//! # pxml-core — the PXML probabilistic semistructured data model
//!
//! This crate implements the data model and possible-worlds semantics of
//!
//! > Edward Hung, Lise Getoor, V. S. Subrahmanian.
//! > *PXML: A Probabilistic Semistructured Data Model and Algebra.*
//! > ICDE 2003.
//!
//! ## Layered model
//!
//! * [`SdInstance`] — an ordinary semistructured instance: a rooted,
//!   edge-labelled directed graph with typed leaf values (Definition 3.3).
//! * [`WeakInstance`] — `(V, lch, τ, val, card)`: which objects *may* be
//!   children of which, with per-label cardinality intervals
//!   (Definition 3.4). [`potential`] derives `PL(o, l)` and `PC(o)`
//!   (Definitions 3.5–3.6) and [`hitting`] provides the literal
//!   hitting-set formulation.
//! * [`ProbInstance`] — a weak instance plus a local interpretation: an
//!   [`Opf`] per non-leaf object and a [`Vpf`] per typed leaf
//!   (Definitions 3.8–3.11).
//!
//! ## Semantics
//!
//! [`worlds`] enumerates the distribution over compatible instances
//! induced by the local interpretation (Definition 4.4, Theorem 1);
//! [`global`] checks the independence condition of Definition 4.5; and
//! [`factorize`] constructively inverts the mapping (Theorem 2).
//!
//! ## Quick example
//!
//! ```
//! use pxml_core::fixtures::{fig2_instance, fig3_s1};
//! use pxml_core::worlds::world_probability;
//!
//! let pi = fig2_instance();            // the paper's Figure 2
//! let s1 = fig3_s1();                  // S1 of Figure 3
//! let p = world_probability(&pi, &s1).unwrap();
//! assert!((p - 0.00448).abs() < 1e-12); // Example 4.1
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arena;
pub mod budget;
pub mod catalog;
pub mod childset;
pub mod error;
pub mod factorize;
pub mod fixtures;
pub mod global;
pub mod hitting;
pub mod ids;
pub mod instance;
pub mod lint;
pub mod mutate;
pub mod opf;
pub mod pathkey;
pub mod potential;
pub mod prob_instance;
pub mod summary;
pub mod types;
pub mod value;
pub mod vpf;
pub mod weak;
pub mod worlds;

pub use arena::ArenaInstance;
pub use budget::{Budget, CancelToken, Exhausted, Resource};
pub use catalog::Catalog;
pub use childset::{ChildSet, ChildUniverse};
pub use error::{CoreError, Result, PROB_EPS};
pub use global::GlobalInterpretation;
pub use ids::{IdMap, Label, ObjectId, TypeId};
pub use instance::{SdInstance, SdInstanceBuilder, SdNode};
pub use lint::{lint, lint_governed, LintClass, LintFinding, LintOutcome, Severity};
pub use mutate::{parse_ops, render_ops, Mutation, MutationEffect};
pub use opf::{IndependentOpf, LabelProductOpf, Opf, OpfTable};
pub use pathkey::{LabelPath, PathSuffix};
pub use prob_instance::{ProbInstance, ProbInstanceBuilder};
pub use summary::{EdgeSummary, LeafSummary, ObjectSummary, StructuralSummary};
pub use types::{LeafType, TypeTable};
pub use value::Value;
pub use vpf::Vpf;
pub use weak::{Card, LeafInfo, WeakInstance, WeakInstanceBuilder, WeakNode};
pub use worlds::{
    enumerate_worlds, enumerate_worlds_budgeted, enumerate_worlds_with_limit, world_probability,
    WorldTable,
};
