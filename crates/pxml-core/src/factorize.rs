//! Theorem 2, constructively: recovering a local interpretation from a
//! global one.
//!
//! Given a global interpretation `P` that *satisfies* its weak instance
//! (Definition 4.5), there exists a local interpretation `℘` with
//! `P_℘ = P`. The construction is the natural one: `℘(o)(c)` is the
//! conditional probability `P(c_S(o) = c | o ∈ S)`. This module builds
//! that `℘`, assembles the probabilistic instance and verifies the
//! round trip, returning [`CoreError::NotFactorable`] when `P` does not
//! actually factor (i.e. the hypothesis of Theorem 2 fails).

use crate::error::{CoreError, Result};
use crate::global::{ChoiceKey, GlobalInterpretation};
use crate::ids::{IdMap, ObjectKind};
use crate::opf::{Opf, OpfTable};
use crate::prob_instance::ProbInstance;
use crate::vpf::Vpf;
use crate::worlds::enumerate_worlds;

/// Recovers a probabilistic instance from a global interpretation.
///
/// Returns `NotFactorable` if the induced `P_℘` fails to reproduce `P`
/// within `eps` — by Theorem 2 this happens exactly when `P` violates the
/// independence constraints of Definition 4.5.
pub fn factorize(global: &GlobalInterpretation, eps: f64) -> Result<ProbInstance> {
    let weak = global.weak().clone();
    let mut opfs: IdMap<ObjectKind, Opf> = IdMap::new();
    let mut vpfs: IdMap<ObjectKind, Vpf> = IdMap::new();

    for o in weak.objects() {
        let node = weak.node(o).expect("iterating objects");
        let dist = global.conditional_choice_dist(o);
        if dist.is_empty() {
            // Object never occurs in any world with positive mass. Its
            // local function is unconstrained; pick any legal one.
            if node.leaf().is_some() {
                let ty = weak.catalog().type_def(node.leaf().unwrap().ty).clone();
                vpfs.insert(o, Vpf::uniform(&ty));
            } else if !node.is_childless() {
                let sets = crate::potential::pc_sets(&weak, o);
                let p = 1.0 / sets.len() as f64;
                opfs.insert(
                    o,
                    Opf::Table(OpfTable::from_entries(sets.into_iter().map(|s| (s, p)))),
                );
            }
            continue;
        }
        if node.leaf().is_some() {
            let mut vpf = Vpf::new();
            for (key, p) in dist {
                match key {
                    ChoiceKey::Value(v) => vpf.set(v, p),
                    _ => return Err(CoreError::NotFactorable),
                }
            }
            vpfs.insert(o, vpf);
        } else if !node.is_childless() {
            let mut table = OpfTable::new();
            for (key, p) in dist {
                match key {
                    ChoiceKey::Children(set) => table.add(set, p),
                    _ => return Err(CoreError::NotFactorable),
                }
            }
            opfs.insert(o, Opf::Table(table));
        }
    }

    let pi = ProbInstance::from_parts(weak, opfs, vpfs)?;

    // Verify the round trip: P_℘ must reproduce P world-by-world.
    let induced = enumerate_worlds(&pi)?;
    for (s, p) in global.table().iter() {
        if (induced.prob(s) - p).abs() > eps {
            return Err(CoreError::NotFactorable);
        }
    }
    // And P must cover every world of P_℘ (no extra mass elsewhere).
    for (s, p) in induced.iter() {
        if (global.prob(s) - p).abs() > eps {
            return Err(CoreError::NotFactorable);
        }
    }
    Ok(pi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{chain, diamond, fig2_instance};
    use crate::worlds::WorldTable;

    #[test]
    fn theorem_2_round_trip_on_fixtures() {
        for pi in [fig2_instance(), chain(3, 0.4), diamond()] {
            let g = GlobalInterpretation::from_local(&pi).unwrap();
            let recovered = factorize(&g, 1e-7).unwrap();
            // The recovered instance induces the same distribution.
            let a = enumerate_worlds(&pi).unwrap();
            let b = enumerate_worlds(&recovered).unwrap();
            assert!(a.approx_eq(&b, 1e-7));
        }
    }

    #[test]
    fn recovered_opfs_match_original() {
        let pi = fig2_instance();
        let g = GlobalInterpretation::from_local(&pi).unwrap();
        let recovered = factorize(&g, 1e-7).unwrap();
        let r = pi.root();
        let node = pi.weak().node(r).unwrap();
        let orig = pi.opf(r).unwrap().to_table(node.universe());
        let rec = recovered.opf(r).unwrap().to_table(node.universe());
        for (set, p) in orig.iter() {
            assert!((rec.prob(set) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn correlated_distribution_is_not_factorable() {
        let pi = diamond();
        let full = enumerate_worlds(&pi).unwrap();
        let a = pi.oid("a").unwrap();
        let b = pi.oid("b").unwrap();
        let c = pi.oid("c").unwrap();
        let mut correlated: WorldTable =
            full.filter(|s| s.children(a).contains(&c) == s.children(b).contains(&c));
        correlated.normalize();
        let g = GlobalInterpretation::new(pi.weak().clone(), correlated).unwrap();
        assert!(!g.satisfies(1e-7));
        assert!(matches!(factorize(&g, 1e-7), Err(CoreError::NotFactorable)));
    }
}
