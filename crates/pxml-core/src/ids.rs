//! Typed identifiers and string interning.
//!
//! The paper's model is defined over a universe of objects `O`, labels `L`
//! and types `T` (Definition 3.3). We intern the names of all three into
//! dense `u32`-backed identifiers so that instances can use plain vectors
//! indexed by id instead of hash maps keyed by strings.

use std::fmt;
use std::hash::Hash;
use std::marker::PhantomData;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// Marker trait implemented by the phantom kinds of [`Id`].
pub trait IdKind: Copy + Eq + Hash + fmt::Debug + Default + 'static {
    /// Human-readable kind name used in `Debug`/error output.
    const KIND: &'static str;
}

/// A dense, typed identifier. `Id<K>` for different `K` are distinct types,
/// so an object id can never be confused with a label id at compile time.
#[derive(Serialize, Deserialize)]
#[serde(transparent)]
pub struct Id<K: IdKind> {
    raw: u32,
    #[serde(skip)]
    _kind: PhantomData<K>,
}

impl<K: IdKind> Id<K> {
    /// Creates an id from its raw index.
    #[inline]
    pub const fn from_raw(raw: u32) -> Self {
        Id { raw, _kind: PhantomData }
    }

    /// The raw dense index of this id.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.raw
    }

    /// The raw index as a `usize`, for vector indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.raw as usize
    }
}

impl<K: IdKind> Clone for Id<K> {
    #[inline]
    fn clone(&self) -> Self {
        *self
    }
}
impl<K: IdKind> Copy for Id<K> {}
impl<K: IdKind> PartialEq for Id<K> {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}
impl<K: IdKind> Eq for Id<K> {}
impl<K: IdKind> PartialOrd for Id<K> {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<K: IdKind> Ord for Id<K> {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.raw.cmp(&other.raw)
    }
}
impl<K: IdKind> Hash for Id<K> {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.raw.hash(state);
    }
}
impl<K: IdKind> fmt::Debug for Id<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", K::KIND, self.raw)
    }
}

macro_rules! define_id {
    ($(#[$meta:meta])* $kind:ident, $alias:ident, $name:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
        pub struct $kind;
        impl IdKind for $kind {
            const KIND: &'static str = $name;
        }
        $(#[$meta])*
        pub type $alias = Id<$kind>;
    };
}

define_id!(
    /// Identifier of an object (a member of the paper's universe `O`).
    ObjectKind,
    ObjectId,
    "o"
);
define_id!(
    /// Identifier of an edge label (a member of the paper's label set `L`).
    LabelKind,
    Label,
    "l"
);
define_id!(
    /// Identifier of a leaf type (a member of the paper's type set `T`).
    TypeKind,
    TypeId,
    "t"
);

/// An append-only interner mapping strings to dense typed ids.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Interner<K: IdKind> {
    names: Vec<Arc<str>>,
    #[serde(skip)]
    index: std::collections::HashMap<Arc<str>, u32>,
    #[serde(skip)]
    _kind: PhantomData<K>,
}

impl<K: IdKind> Interner<K> {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner { names: Vec::new(), index: std::collections::HashMap::new(), _kind: PhantomData }
    }

    /// Interns `name`, returning its id. Idempotent.
    pub fn intern(&mut self, name: &str) -> Id<K> {
        if let Some(&raw) = self.index.get(name) {
            return Id::from_raw(raw);
        }
        let raw = u32::try_from(self.names.len()).expect("interner overflow");
        let arc: Arc<str> = Arc::from(name);
        self.names.push(Arc::clone(&arc));
        self.index.insert(arc, raw);
        Id::from_raw(raw)
    }

    /// Looks up the id of `name`, if already interned.
    pub fn get(&self, name: &str) -> Option<Id<K>> {
        self.index.get(name).map(|&raw| Id::from_raw(raw))
    }

    /// Resolves an id back to its name.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: Id<K>) -> &str {
        &self.names[id.index()]
    }

    /// Resolves an id back to its name without panicking.
    pub fn try_resolve(&self, id: Id<K>) -> Option<&str> {
        self.names.get(id.index()).map(|s| &**s)
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Id<K>, &str)> {
        self.names.iter().enumerate().map(|(i, s)| (Id::from_raw(i as u32), &**s))
    }

    /// Rebuilds the reverse index; used after deserialization.
    pub fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, s)| (Arc::clone(s), i as u32))
            .collect();
    }
}

/// A sparse map from ids of kind `K` to values, backed by a dense vector.
///
/// Presence of a key doubles as set membership: a [`crate::WeakInstance`]
/// stores one entry per object in its vertex set `V`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IdMap<K: IdKind, V> {
    slots: Vec<Option<V>>,
    len: usize,
    #[serde(skip)]
    _kind: PhantomData<K>,
}

impl<K: IdKind, V> Default for IdMap<K, V> {
    fn default() -> Self {
        IdMap { slots: Vec::new(), len: 0, _kind: PhantomData }
    }
}

impl<K: IdKind, V> IdMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a value, returning the previous one if present.
    pub fn insert(&mut self, id: Id<K>, value: V) -> Option<V> {
        let idx = id.index();
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        let prev = self.slots[idx].replace(value);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Removes and returns the value for `id`.
    pub fn remove(&mut self, id: Id<K>) -> Option<V> {
        let prev = self.slots.get_mut(id.index()).and_then(Option::take);
        if prev.is_some() {
            self.len -= 1;
        }
        prev
    }

    /// Returns a reference to the value for `id`.
    #[inline]
    pub fn get(&self, id: Id<K>) -> Option<&V> {
        self.slots.get(id.index()).and_then(Option::as_ref)
    }

    /// Returns a mutable reference to the value for `id`.
    #[inline]
    pub fn get_mut(&mut self, id: Id<K>) -> Option<&mut V> {
        self.slots.get_mut(id.index()).and_then(Option::as_mut)
    }

    /// True if `id` has a value.
    #[inline]
    pub fn contains(&self, id: Id<K>) -> bool {
        self.get(id).is_some()
    }

    /// Number of present entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over `(id, &value)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Id<K>, &V)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (Id::from_raw(i as u32), v)))
    }

    /// Iterates over `(id, &mut value)` pairs in id order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Id<K>, &mut V)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, v)| v.as_mut().map(|v| (Id::from_raw(i as u32), v)))
    }

    /// Iterates over present keys in id order.
    pub fn keys(&self) -> impl Iterator<Item = Id<K>> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|_| Id::from_raw(i as u32)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i: Interner<ObjectKind> = Interner::new();
        let a = i.intern("book");
        let b = i.intern("book");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
        assert_eq!(i.resolve(a), "book");
    }

    #[test]
    fn intern_distinct_names_get_distinct_ids() {
        let mut i: Interner<LabelKind> = Interner::new();
        let a = i.intern("author");
        let t = i.intern("title");
        assert_ne!(a, t);
        assert_eq!(i.get("author"), Some(a));
        assert_eq!(i.get("publisher"), None);
    }

    #[test]
    fn interner_iterates_in_insertion_order() {
        let mut i: Interner<TypeKind> = Interner::new();
        i.intern("x");
        i.intern("y");
        let names: Vec<&str> = i.iter().map(|(_, n)| n).collect();
        assert_eq!(names, ["x", "y"]);
    }

    #[test]
    fn idmap_insert_get_remove() {
        let mut m: IdMap<ObjectKind, i32> = IdMap::new();
        let id = ObjectId::from_raw(5);
        assert_eq!(m.insert(id, 7), None);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(id), Some(&7));
        assert_eq!(m.insert(id, 9), Some(7));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(id), Some(9));
        assert!(m.is_empty());
        assert_eq!(m.get(id), None);
    }

    #[test]
    fn idmap_iteration_is_in_id_order() {
        let mut m: IdMap<ObjectKind, &str> = IdMap::new();
        m.insert(ObjectId::from_raw(3), "c");
        m.insert(ObjectId::from_raw(1), "a");
        let keys: Vec<u32> = m.keys().map(|k| k.raw()).collect();
        assert_eq!(keys, [1, 3]);
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(ObjectId::from_raw(1) < ObjectId::from_raw(2));
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut i: Interner<ObjectKind> = Interner::new();
        let a = i.intern("A1");
        let mut j = i.clone();
        j.rebuild_index();
        assert_eq!(j.get("A1"), Some(a));
    }
}
