//! Potential child sets (Definitions 3.5 and 3.6).
//!
//! `PL(o, l)` is the set of potential `l`-child sets of `o`: subsets of
//! `lch(o, l)` whose size lies in `card(o, l)`. `PC(o)` is the set of
//! potential child sets: unions of one potential `l`-child set per label
//! (equivalently, unions of minimal hitting sets of `{PL(o, l)}_l`, which
//! coincide because a child carries a unique label — see
//! [`crate::hitting`] and the property tests below).

use crate::budget::Budget;
use crate::childset::ChildSet;
use crate::error::{CoreError, Result};
use crate::ids::{Label, ObjectId};
use crate::weak::WeakInstance;

/// Default cap on `|PC(o)|` for the checked expansion entry points. The
/// product-of-binomials count (Definition 3.6) crosses this long before
/// the corresponding allocation would be survivable, so the count check
/// replaces an OOM with a typed error.
pub const DEFAULT_PC_LIMIT: u64 = 4_000_000;

/// Enumerates `PL(o, l)` as child sets over `o`'s universe.
pub fn pl_sets(w: &WeakInstance, o: ObjectId, l: Label) -> Vec<ChildSet> {
    let Some(node) = w.node(o) else { return Vec::new() };
    let positions: Vec<u32> = node.lch_positions(l).collect();
    let card = node.card(l);
    let mut out = Vec::new();
    let hi = card.max.min(positions.len() as u32);
    for k in card.min..=hi {
        combinations(&positions, k as usize, &mut |chosen| {
            out.push(ChildSet::from_positions(node.universe(), chosen.iter().copied()));
        });
    }
    out
}

/// The size of `PL(o, l)` without enumeration: `Σ_{k=min}^{max} C(n, k)`.
pub fn pl_count(w: &WeakInstance, o: ObjectId, l: Label) -> u64 {
    let Some(node) = w.node(o) else { return 0 };
    let n = node.lch_positions(l).count() as u64;
    let card = node.card(l);
    let hi = u64::from(card.max).min(n);
    (u64::from(card.min)..=hi).fold(0u64, |acc, k| acc.saturating_add(binomial(n, k)))
}

/// Enumerates `PC(o)`: one potential `l`-child set per non-empty label,
/// unioned. Childless objects have `PC(o) = {∅}`.
pub fn pc_sets(w: &WeakInstance, o: ObjectId) -> Vec<ChildSet> {
    let Some(node) = w.node(o) else { return Vec::new() };
    let labels = node.labels();
    let universe = node.universe();
    if labels.is_empty() {
        return vec![ChildSet::empty(universe)];
    }
    let per_label: Vec<Vec<ChildSet>> = labels.iter().map(|&l| pl_sets(w, o, l)).collect();
    if per_label.iter().any(Vec::is_empty) {
        return Vec::new(); // some label's cardinality is unsatisfiable
    }
    let mut out = vec![ChildSet::empty(universe)];
    for sets in &per_label {
        let mut next = Vec::with_capacity(out.len() * sets.len());
        for base in &out {
            for s in sets {
                next.push(base.union(s));
            }
        }
        out = next;
    }
    out
}

/// [`pc_sets`] with a checked count: refuses (with
/// [`CoreError::TooManyPotentialSets`]) when `|PC(o)|` — computed
/// analytically by [`pc_count`], saturating, *before any allocation* —
/// exceeds `limit`.
pub fn pc_sets_checked(w: &WeakInstance, o: ObjectId, limit: u64) -> Result<Vec<ChildSet>> {
    pc_sets_budgeted(w, o, limit, &Budget::unlimited())
}

/// [`pc_sets_checked`] that additionally charges one budget step per
/// intermediate set produced by the cross product.
pub fn pc_sets_budgeted(
    w: &WeakInstance,
    o: ObjectId,
    limit: u64,
    budget: &Budget,
) -> Result<Vec<ChildSet>> {
    let count = pc_count(w, o);
    if count > limit {
        return Err(CoreError::TooManyPotentialSets { object: o, count, limit });
    }
    let Some(node) = w.node(o) else { return Ok(Vec::new()) };
    let labels = node.labels();
    let universe = node.universe();
    if labels.is_empty() {
        return Ok(vec![ChildSet::empty(universe)]);
    }
    let mut per_label = Vec::with_capacity(labels.len());
    // checkpoint-exempt: per-label collection is bounded by the
    // TooManyPotentialSets limit; the product loop below charges per
    // combination it materialises.
    for &l in labels.iter() {
        let pls = pl_sets_checked(w, o, l, limit)?;
        if pls.is_empty() {
            return Ok(Vec::new()); // some label's cardinality is unsatisfiable
        }
        per_label.push(pls);
    }
    let mut out = vec![ChildSet::empty(universe)];
    for sets in &per_label {
        budget.charge((out.len() * sets.len()) as u64)?;
        let mut next = Vec::with_capacity(out.len() * sets.len());
        for base in &out {
            for s in sets {
                next.push(base.union(s));
            }
        }
        out = next;
    }
    Ok(out)
}

/// [`pl_sets`] with a checked count against [`pl_count`] (which uses
/// saturating binomials, so the check itself cannot overflow).
pub fn pl_sets_checked(
    w: &WeakInstance,
    o: ObjectId,
    l: Label,
    limit: u64,
) -> Result<Vec<ChildSet>> {
    let count = pl_count(w, o, l);
    if count > limit {
        return Err(CoreError::TooManyPotentialSets { object: o, count, limit });
    }
    Ok(pl_sets(w, o, l))
}

/// The size of `PC(o)` without enumeration: `∏_l |PL(o, l)|`.
pub fn pc_count(w: &WeakInstance, o: ObjectId) -> u64 {
    let Some(node) = w.node(o) else { return 0 };
    let labels = node.labels();
    if labels.is_empty() {
        return 1;
    }
    labels.iter().fold(1u64, |acc, &l| acc.saturating_mul(pl_count(w, o, l)))
}

/// True if `set ∈ PC(o)`: for every label the number of members carrying it
/// lies in `card(o, l)`. Members are universe positions, so membership in
/// `lch` is structural.
pub fn pc_contains(w: &WeakInstance, o: ObjectId, set: &ChildSet) -> bool {
    let Some(node) = w.node(o) else { return false };
    node.labels().iter().all(|&l| node.card(l).contains(set.count_label(node.universe(), l)))
}

/// Computes `PC(o)` via the paper's literal Definition 3.6 (unions of
/// minimal hitting sets of the `PL` families). Exponentially slower than
/// [`pc_sets`]; used to validate the equivalence.
pub fn pc_sets_via_hitting(w: &WeakInstance, o: ObjectId) -> Vec<ChildSet> {
    let Some(node) = w.node(o) else { return Vec::new() };
    let labels = node.labels();
    let universe = node.universe();
    if labels.is_empty() {
        return vec![ChildSet::empty(universe)];
    }
    let families: Vec<Vec<ChildSet>> = labels.iter().map(|&l| pl_sets(w, o, l)).collect();
    let hitting = crate::hitting::minimal_hitting_sets(&families);
    let mut out: Vec<ChildSet> = hitting
        .into_iter()
        .map(|h| {
            h.into_iter()
                .fold(ChildSet::empty(universe), |acc, s| acc.union(&s))
        })
        .collect();
    out.sort_by_key(|s| s.positions().collect::<Vec<_>>());
    out.dedup();
    out
}

/// Applies `f` to every `k`-combination of `items` (in lexicographic order
/// of indices).
fn combinations<T: Copy>(items: &[T], k: usize, f: &mut impl FnMut(&[T])) {
    fn rec<T: Copy>(items: &[T], k: usize, start: usize, acc: &mut Vec<T>, f: &mut impl FnMut(&[T])) {
        if acc.len() == k {
            f(acc);
            return;
        }
        let needed = k - acc.len();
        for i in start..=items.len().saturating_sub(needed) {
            acc.push(items[i]);
            rec(items, k, i + 1, acc, f);
            acc.pop();
        }
    }
    if k > items.len() {
        return;
    }
    let mut acc = Vec::with_capacity(k);
    rec(items, k, 0, &mut acc, f);
}

/// Binomial coefficient `C(n, k)`, saturating at `u64::MAX`.
pub fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * u128::from(n - i) / u128::from(i + 1);
        if acc > u128::from(u64::MAX) {
            return u64::MAX;
        }
    }
    acc as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig2_weak;

    fn oid(w: &WeakInstance, name: &str) -> ObjectId {
        w.catalog().find_object(name).unwrap()
    }
    fn lid(w: &WeakInstance, name: &str) -> Label {
        w.catalog().find_label(name).unwrap()
    }

    #[test]
    fn example_3_2_author_children_of_b1() {
        // card(B1, author) = [1,2] over {A1, A2} ⇒ {{A1},{A2},{A1,A2}}.
        let w = fig2_weak();
        let b1 = oid(&w, "B1");
        let author = lid(&w, "author");
        let pls = pl_sets(&w, b1, author);
        assert_eq!(pls.len(), 3);
        assert_eq!(pl_count(&w, b1, author), 3);
        let sizes: Vec<u32> = pls.iter().map(ChildSet::len).collect();
        assert_eq!(sizes.iter().filter(|&&s| s == 1).count(), 2);
        assert_eq!(sizes.iter().filter(|&&s| s == 2).count(), 1);
    }

    #[test]
    fn pc_of_b1_matches_figure_2() {
        // B1: authors [1,2] over {A1,A2}, titles [0,1] over {T1}
        // ⇒ 3 × 2 = 6 potential child sets, as the Figure 2 table shows.
        let w = fig2_weak();
        let b1 = oid(&w, "B1");
        assert_eq!(pc_count(&w, b1), 6);
        assert_eq!(pc_sets(&w, b1).len(), 6);
    }

    #[test]
    fn pc_of_r_matches_figure_2() {
        // R: books [2,3] over {B1,B2,B3} ⇒ C(3,2)+C(3,3) = 4 sets.
        let w = fig2_weak();
        assert_eq!(pc_count(&w, w.root()), 4);
        assert_eq!(pc_sets(&w, w.root()).len(), 4);
    }

    #[test]
    fn pc_of_childless_object_is_empty_set_only() {
        let w = fig2_weak();
        let t1 = oid(&w, "T1");
        let sets = pc_sets(&w, t1);
        assert_eq!(sets.len(), 1);
        assert!(sets[0].is_empty());
        assert_eq!(pc_count(&w, t1), 1);
    }

    #[test]
    fn pc_contains_agrees_with_enumeration() {
        let w = fig2_weak();
        for o in w.objects() {
            let node = w.node(o).unwrap();
            let sets = pc_sets(&w, o);
            for s in &sets {
                assert!(pc_contains(&w, o, s));
            }
            // Every subset of the universe not in PC must be rejected.
            let all = ChildSet::full(node.universe());
            if node.universe().len() <= 10 {
                for sub in all.subsets() {
                    let in_pc = sets.contains(&sub);
                    assert_eq!(pc_contains(&w, o, &sub), in_pc);
                }
            }
        }
    }

    #[test]
    fn cross_product_equals_hitting_set_definition() {
        let w = fig2_weak();
        for o in w.objects() {
            let mut fast = pc_sets(&w, o);
            fast.sort_by_key(|s| s.positions().collect::<Vec<_>>());
            fast.dedup();
            let slow = pc_sets_via_hitting(&w, o);
            assert_eq!(fast, slow, "PC mismatch for {:?}", w.catalog().object_name(o));
        }
    }

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 6), 0);
        assert_eq!(binomial(64, 32), 1832624140942590534);
    }

    #[test]
    fn binomial_saturates() {
        assert_eq!(binomial(1000, 500), u64::MAX);
    }

    #[test]
    fn combinations_visits_all() {
        let mut seen = Vec::new();
        combinations(&[1, 2, 3, 4], 2, &mut |c| seen.push(c.to_vec()));
        assert_eq!(seen.len(), 6);
        assert!(seen.contains(&vec![1, 4]));
        assert!(seen.contains(&vec![2, 3]));
    }

    #[test]
    fn combinations_k_zero_yields_empty_once() {
        let mut count = 0;
        combinations(&[1, 2], 0, &mut |c| {
            assert!(c.is_empty());
            count += 1;
        });
        assert_eq!(count, 1);
    }
}
