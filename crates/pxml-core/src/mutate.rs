//! In-place mutation of a [`ProbInstance`] with the §6.1 local
//! recomputation rule.
//!
//! Section 6.1 of the paper shows that deleting (or conditioning away) a
//! child only requires *local* changes to the parent: the OPF is
//! restricted to the surviving child sets and renormalised, and the
//! `card` intervals are re-checked against the shrunken `lch`. This
//! module applies the same rule in both directions:
//!
//! * **shrink** (delete / unlink): condition the parent OPF on the
//!   removed child's absence (`℘'(c) = ℘(c) / P(absent)` over sets not
//!   containing it — exactly the ε-renormalisation of §6.1), rebuild the
//!   child universe without it, and re-check `card` satisfiability;
//! * **grow** (insert / link): extend the parent OPF with an independent
//!   presence event (`(S, q) → (S, q·(1−p)) + (S ∪ {new}, q·p)`), then
//!   verify the support still lies inside the recomputed `PC(o)`
//!   (Definition 3.6 over the grown universe);
//! * **repoint** (edge/value marginal updates): mix the
//!   present/absent-conditioned distributions back together at the new
//!   marginal, which keeps the support inside the old `PC(o)`.
//!
//! Every operation is **atomic**: either the instance transitions to a
//! coherent state or an error is returned and the instance is bytewise
//! unchanged (structural operations build a candidate clone and swap it
//! in only after validation; entry-level operations validate before the
//! first write). The returned [`MutationEffect`] names the directly
//! changed objects so callers (the query-engine cache) can bound the
//! invalidation blast radius.

use std::collections::HashSet;

use crate::childset::{ChildSet, ChildUniverse};
use crate::error::{CoreError, Result, PROB_EPS};
use crate::ids::{Label, ObjectId};
use crate::opf::{LabelProductOpf, Opf, OpfTable};
use crate::prob_instance::ProbInstance;
use crate::value::Value;
use crate::vpf::Vpf;
use crate::weak::{WeakInstance, WeakNode};

/// One mutation against a [`ProbInstance`].
#[derive(Clone, Debug, PartialEq)]
pub enum Mutation {
    /// Insert a fresh childless object named `name` as a potential
    /// `label`-child of `parent`, present independently with
    /// probability `prob`.
    InsertObject {
        /// Catalog name for the new object (must not name a member of `V`).
        name: String,
        /// The parent gaining the potential child.
        parent: ObjectId,
        /// The edge label.
        label: Label,
        /// Independent presence probability of the new child.
        prob: f64,
    },
    /// Delete `object` and everything that becomes unreachable with it,
    /// conditioning every retained parent's OPF on the removals' absence.
    DeleteObject {
        /// The object to delete (must not be the root).
        object: ObjectId,
    },
    /// Add an existing object as a potential `label`-child of `parent`
    /// (present independently with probability `prob`).
    AddEdge {
        /// The parent gaining the edge.
        parent: ObjectId,
        /// The edge label.
        label: Label,
        /// The existing object becoming a potential child.
        child: ObjectId,
        /// Independent presence probability of the new edge.
        prob: f64,
    },
    /// Remove the `parent → child` edge, conditioning the parent OPF on
    /// the child's absence (§6.1). The child must stay reachable.
    RemoveEdge {
        /// The parent losing the edge.
        parent: ObjectId,
        /// The potential child being unlinked.
        child: ObjectId,
    },
    /// Set the marginal presence probability of `child` under `parent`
    /// to `prob` by remixing the present/absent conditionals.
    SetEdgeProb {
        /// The parent whose OPF is adjusted.
        parent: ObjectId,
        /// The potential child whose marginal changes.
        child: ObjectId,
        /// The new marginal presence probability.
        prob: f64,
    },
    /// Set the VPF probability of `value` at leaf `object` to `prob`,
    /// rescaling the remaining mass proportionally.
    SetValueProb {
        /// The typed leaf whose VPF is adjusted.
        object: ObjectId,
        /// The domain value whose probability changes.
        value: Value,
        /// The new probability of `value`.
        prob: f64,
    },
    /// Replace the whole OPF of `object` (validated against `PC(o)`).
    ReplaceOpf {
        /// The non-leaf object.
        object: ObjectId,
        /// The replacement OPF.
        opf: Opf,
    },
    /// Replace the whole VPF of `object` (validated against `dom(τ(o))`).
    ReplaceVpf {
        /// The typed leaf object.
        object: ObjectId,
        /// The replacement VPF.
        vpf: Vpf,
    },
}

impl Mutation {
    /// True when the mutation changes the weak skeleton (membership of
    /// `V` or a child universe) rather than only probability entries.
    /// Structural mutations can change located layers; entry-level ones
    /// cannot (`layers_weak` traverses `card`-gated universes only).
    pub fn is_structural(&self) -> bool {
        matches!(
            self,
            Mutation::InsertObject { .. }
                | Mutation::DeleteObject { .. }
                | Mutation::AddEdge { .. }
                | Mutation::RemoveEdge { .. }
        )
    }
}

/// What a successful mutation touched — the input to cache invalidation.
#[derive(Clone, Debug, Default)]
pub struct MutationEffect {
    /// Directly changed objects `D`: mutated parents, removed objects,
    /// the inserted object, leaves with changed VPFs. Sorted, deduped.
    pub dirty: Vec<ObjectId>,
    /// Objects removed from `V` (subset of `dirty`).
    pub removed: Vec<ObjectId>,
    /// The freshly inserted object, if any.
    pub inserted: Option<ObjectId>,
    /// True when the weak skeleton changed (see
    /// [`Mutation::is_structural`]); false for pure entry updates and
    /// for provable no-ops.
    pub structural: bool,
}

impl MutationEffect {
    fn noop() -> Self {
        MutationEffect::default()
    }

    fn new(mut dirty: Vec<ObjectId>, structural: bool) -> Self {
        dirty.sort_unstable();
        dirty.dedup();
        MutationEffect { dirty, removed: Vec::new(), inserted: None, structural }
    }
}

fn check_prob(object: ObjectId, p: f64) -> Result<()> {
    if !p.is_finite() || !(0.0..=1.0).contains(&p) {
        return Err(CoreError::BadProbability { object, p });
    }
    Ok(())
}

/// Re-anchors every entry of `table` onto `universe` (canonicalising the
/// `Mask`/`Sparse` representation so hash lookups stay consistent after
/// the universe changed size).
fn recanon_table(table: &OpfTable, universe: &ChildUniverse) -> OpfTable {
    let mut out = OpfTable::new();
    for (s, p) in table.iter() {
        out.add(ChildSet::from_positions(universe, s.positions()), p);
    }
    out
}

/// `(S, q) → (S, q·(1−prob)) + (S ∪ {np}, q·prob)` over `new_u`,
/// dropping zero-mass entries.
fn extend_table(table: &OpfTable, new_u: &ChildUniverse, np: u32, prob: f64) -> OpfTable {
    let mut out = OpfTable::new();
    for (s, p) in table.iter() {
        let keep: Vec<u32> = s.positions().collect();
        let without = p * (1.0 - prob);
        if without > 0.0 {
            out.add(ChildSet::from_positions(new_u, keep.iter().copied()), without);
        }
        let with = p * prob;
        if with > 0.0 {
            out.add(
                ChildSet::from_positions(new_u, keep.iter().copied().chain([np])),
                with,
            );
        }
    }
    out
}

/// Extends `opf` (over `old → new` universe) with an independent
/// presence event for the child appended at position `np` under `label`.
fn extend_opf(opf: &Opf, new_u: &ChildUniverse, label: Label, np: u32, prob: f64) -> Opf {
    match opf {
        Opf::Table(t) => Opf::Table(extend_table(t, new_u, np, prob)),
        Opf::Independent(i) => {
            let mut probs = i.probs().to_vec();
            // The appended universe position is exactly the old length;
            // pad in case a lenient instance had a short prob vector.
            probs.resize(np as usize, 0.0);
            probs.push(prob);
            Opf::Independent(crate::opf::IndependentOpf::new(probs))
        }
        Opf::LabelProduct(l) => {
            let mut tables: Vec<(Label, OpfTable)> = Vec::new();
            let mut found = false;
            for (pl, _, t) in l.parts() {
                if *pl == label && !found {
                    found = true;
                    tables.push((*pl, extend_table(t, new_u, np, prob)));
                } else {
                    tables.push((*pl, recanon_table(t, new_u)));
                }
            }
            if !found {
                let mut t = OpfTable::new();
                if 1.0 - prob > 0.0 {
                    t.add(ChildSet::from_positions(new_u, []), 1.0 - prob);
                }
                if prob > 0.0 {
                    t.add(ChildSet::from_positions(new_u, [np]), prob);
                }
                tables.push((label, t));
            }
            Opf::LabelProduct(LabelProductOpf::new(new_u, tables))
        }
    }
}

/// Conditions `table` on the absence of every position in `gone`
/// (positions over the *old* universe), then re-anchors the survivors
/// onto `new_u`. Errors with [`CoreError::DegenerateMass`] when a gone
/// child is present with probability 1 (no surviving mass — the §6.1
/// renormalisation is undefined).
fn shrink_table(
    table: &OpfTable,
    gone: &[u32],
    new_u: &ChildUniverse,
    old_u: &ChildUniverse,
) -> Result<OpfTable> {
    let mut cur = table.clone();
    for &pos in gone {
        let (next, m) = cur.condition(pos, false);
        if m <= 0.0 {
            return Err(CoreError::DegenerateMass { total: m });
        }
        cur = next;
    }
    let mut out = OpfTable::new();
    for (s, p) in cur.iter() {
        out.add(s.translate(old_u, new_u), p);
    }
    Ok(out)
}

/// Conditions `opf` on the absence of the children at positions `gone`
/// and rebuilds it over `new_u` (§6.1's local recomputation).
fn shrink_opf(
    opf: &Opf,
    gone: &[u32],
    old_u: &ChildUniverse,
    new_u: &ChildUniverse,
) -> Result<Opf> {
    match opf {
        Opf::Table(t) => Ok(Opf::Table(shrink_table(t, gone, new_u, old_u)?)),
        Opf::Independent(i) => {
            let mut probs = i.probs().to_vec();
            probs.resize(old_u.len(), 0.0);
            for &pos in gone {
                if probs[pos as usize] >= 1.0 {
                    return Err(CoreError::DegenerateMass { total: 0.0 });
                }
            }
            let kept: Vec<f64> = probs
                .iter()
                .enumerate()
                .filter(|(i, _)| !gone.contains(&(*i as u32)))
                .map(|(_, &p)| p)
                .collect();
            Ok(Opf::Independent(crate::opf::IndependentOpf::new(kept)))
        }
        Opf::LabelProduct(l) => {
            let mut tables: Vec<(Label, OpfTable)> = Vec::new();
            for (pl, slice, t) in l.parts() {
                let in_part: Vec<u32> =
                    gone.iter().copied().filter(|&p| slice.contains_pos(p)).collect();
                let shrunk = shrink_table(t, &in_part, new_u, old_u)?;
                // Keep only parts whose label still has members.
                if !new_u.members_with_label(*pl).is_empty() {
                    tables.push((*pl, shrunk));
                }
            }
            Ok(Opf::LabelProduct(LabelProductOpf::new(new_u, tables)))
        }
    }
}

/// Checks that every declared cardinality interval of `node` is still
/// satisfiable by its universe (`min ≤ |lch(o, l)|`, Definition 3.4).
fn check_cards(o: ObjectId, node: &WeakNode) -> Result<()> {
    for &(l, card) in node.cards() {
        let available = node.universe().members_with_label(l).len();
        if card.min > available {
            return Err(CoreError::BadCardinality {
                object: o,
                label: l,
                min: card.min,
                max: card.max,
                available,
            });
        }
    }
    Ok(())
}

/// Checks that every positive-mass child set of `opf` lies inside the
/// recomputed `PC(o)` over `node`'s (possibly just-changed) universe.
/// Mirrors [`crate::potential::pc_contains`] without needing the whole
/// weak instance.
fn check_opf_pc(o: ObjectId, node: &WeakNode, opf: &Opf) -> Result<()> {
    let labels = node.labels();
    let in_pc = |set: &ChildSet| -> bool {
        labels
            .iter()
            .all(|&l| node.card(l).contains(set.count_label(node.universe(), l)))
    };
    match opf {
        Opf::Table(t) => {
            for (s, p) in t.iter() {
                if p > 0.0 && !in_pc(s) {
                    return Err(CoreError::OpfEntryOutsidePc { object: o });
                }
            }
        }
        Opf::Independent(i) => {
            // Per-label possible counts: forced (p = 1) up to
            // forced + uncertain (0 < p < 1); the whole range must fit
            // the card interval.
            for &l in &labels {
                let mut forced = 0u32;
                let mut uncertain = 0u32;
                for (pos, _, pl) in node.universe().iter() {
                    if pl != l {
                        continue;
                    }
                    let p = i.probs().get(pos as usize).copied().unwrap_or(0.0);
                    if p >= 1.0 {
                        forced += 1;
                    } else if p > 0.0 {
                        uncertain += 1;
                    }
                }
                let card = node.card(l);
                if !card.contains(forced) || !card.contains(forced + uncertain) {
                    return Err(CoreError::OpfEntryOutsidePc { object: o });
                }
            }
        }
        Opf::LabelProduct(lp) => {
            let mut covered: Vec<Label> = Vec::new();
            for (pl, _, t) in lp.parts() {
                covered.push(*pl);
                for (s, p) in t.iter() {
                    if p > 0.0 && !node.card(*pl).contains(s.len()) {
                        return Err(CoreError::OpfEntryOutsidePc { object: o });
                    }
                }
            }
            for &l in &labels {
                if !covered.contains(&l) && !node.card(l).contains(0) {
                    return Err(CoreError::OpfEntryOutsidePc { object: o });
                }
            }
        }
    }
    Ok(())
}

/// Objects reachable from the root over full child universes, skipping
/// `skip` (never entered) and the single edge `skip_edge` when given.
fn reachable(
    w: &WeakInstance,
    skip: Option<ObjectId>,
    skip_edge: Option<(ObjectId, ObjectId)>,
) -> HashSet<ObjectId> {
    let mut seen: HashSet<ObjectId> = HashSet::new();
    let root = w.root();
    if Some(root) == skip || !w.contains(root) {
        return seen;
    }
    let mut stack = vec![root];
    seen.insert(root);
    while let Some(o) = stack.pop() {
        let Some(node) = w.node(o) else { continue };
        for (_, c, _) in node.universe().iter() {
            if Some(c) == skip || skip_edge == Some((o, c)) {
                continue;
            }
            if w.contains(c) && seen.insert(c) {
                stack.push(c);
            }
        }
    }
    seen
}

/// The base OPF for a parent about to gain its first potential child:
/// bare childless objects carry no `℘`, so start from the point mass on
/// the empty set. A parent with children but no OPF is an incoherent
/// (leniently loaded) instance — surface [`CoreError::MissingOpf`].
fn base_opf(pi: &ProbInstance, parent: ObjectId, node: &WeakNode) -> Result<Opf> {
    match pi.opf(parent) {
        Some(o) => Ok(o.clone()),
        None if node.is_childless() => {
            Ok(Opf::Table(OpfTable::from_entries([(ChildSet::empty(node.universe()), 1.0)])))
        }
        None => Err(CoreError::MissingOpf(parent)),
    }
}

impl ProbInstance {
    /// Applies one mutation atomically: on `Ok` the instance is coherent
    /// and the returned [`MutationEffect`] lists the directly changed
    /// objects; on `Err` the instance is unchanged (bytewise).
    pub fn apply(&mut self, m: &Mutation) -> Result<MutationEffect> {
        match m {
            Mutation::InsertObject { name, parent, label, prob } => {
                self.apply_insert(name, *parent, *label, *prob)
            }
            Mutation::DeleteObject { object } => self.apply_delete(*object),
            Mutation::AddEdge { parent, label, child, prob } => {
                self.apply_add_edge(*parent, *label, *child, *prob)
            }
            Mutation::RemoveEdge { parent, child } => self.apply_remove_edge(*parent, *child),
            Mutation::SetEdgeProb { parent, child, prob } => {
                self.apply_set_edge(*parent, *child, *prob)
            }
            Mutation::SetValueProb { object, value, prob } => {
                self.apply_set_value(*object, value, *prob)
            }
            Mutation::ReplaceOpf { object, opf } => {
                if !self.weak().contains(*object) {
                    return Err(CoreError::UnknownObject(*object));
                }
                opf.validate(self.weak(), *object)?;
                self.opf_map_mut().insert(*object, opf.clone());
                Ok(MutationEffect::new(vec![*object], false))
            }
            Mutation::ReplaceVpf { object, vpf } => {
                let node =
                    self.weak().node(*object).ok_or(CoreError::UnknownObject(*object))?;
                let leaf = node.leaf().ok_or(CoreError::MissingVpf(*object))?;
                let ty = self
                    .catalog()
                    .types()
                    .try_resolve(leaf.ty)
                    .ok_or(CoreError::MissingVpf(*object))?
                    .clone();
                vpf.validate(*object, &ty)?;
                self.vpf_map_mut().insert(*object, vpf.clone());
                Ok(MutationEffect::new(vec![*object], false))
            }
        }
    }

    /// Grow: shared tail of insert and link — `child` is already a
    /// member of `V` on a candidate clone; extend `parent`'s universe
    /// and OPF and re-check `card`/`PC`.
    fn grow_edge(
        cand: &mut ProbInstance,
        parent: ObjectId,
        label: Label,
        child: ObjectId,
        prob: f64,
    ) -> Result<()> {
        let node = cand.weak().node(parent).ok_or(CoreError::UnknownObject(parent))?;
        if node.leaf().is_some() {
            return Err(CoreError::LeafWithChildren(parent));
        }
        if let Some(pos) = node.universe().position(child) {
            let first = node.universe().label_at(pos);
            return Err(if first == label {
                CoreError::DuplicateChild { parent, child, label }
            } else {
                CoreError::AmbiguousChildLabel { parent, child, first, second: label }
            });
        }
        let base = base_opf(cand, parent, node)?;
        let mut new_u = node.universe().clone();
        let np = new_u.push(child, label);
        let new_opf = extend_opf(&base, &new_u, label, np, prob);
        if let Some(n) = cand.weak_mut().node_mut(parent) {
            n.set_universe(new_u);
        }
        // Re-check against the grown universe: `card.max` may forbid the
        // new child co-occurring with existing ones (PC shrank relative
        // to the support we just built).
        let node = cand.weak().node(parent).ok_or(CoreError::UnknownObject(parent))?;
        check_cards(parent, node)?;
        check_opf_pc(parent, node, &new_opf)?;
        cand.opf_map_mut().insert(parent, new_opf);
        Ok(())
    }

    fn apply_insert(
        &mut self,
        name: &str,
        parent: ObjectId,
        label: Label,
        prob: f64,
    ) -> Result<MutationEffect> {
        check_prob(parent, prob)?;
        if let Some(id) = self.catalog().find_object(name) {
            if self.weak().contains(id) {
                return Err(CoreError::AlreadyExists { object: id });
            }
        }
        if !self.weak().contains(parent) {
            return Err(CoreError::UnknownObject(parent));
        }
        // Candidate clone: all remaining checks happen on the copy, so a
        // failure leaves `self` (catalog included) untouched.
        let mut cand = self.clone();
        let id = cand.weak_mut().catalog_mut().object(name);
        cand.weak_mut().insert_node(
            id,
            WeakNode::from_parts(ChildUniverse::from_members([]), Vec::new(), None),
        );
        Self::grow_edge(&mut cand, parent, label, id, prob)?;
        *self = cand;
        let mut effect = MutationEffect::new(vec![parent, id], true);
        effect.inserted = Some(id);
        Ok(effect)
    }

    fn apply_add_edge(
        &mut self,
        parent: ObjectId,
        label: Label,
        child: ObjectId,
        prob: f64,
    ) -> Result<MutationEffect> {
        check_prob(parent, prob)?;
        let w = self.weak();
        if !w.contains(parent) {
            return Err(CoreError::UnknownObject(parent));
        }
        if !w.contains(child) {
            return Err(CoreError::UnknownObject(child));
        }
        // Acyclicity (Definition 4.3): the child must not already reach
        // the parent through full child universes.
        if child == parent || reaches(w, child, parent) {
            return Err(CoreError::CycleDetected(parent));
        }
        let mut cand = self.clone();
        Self::grow_edge(&mut cand, parent, label, child, prob)?;
        *self = cand;
        Ok(MutationEffect::new(vec![parent], true))
    }

    fn apply_remove_edge(&mut self, parent: ObjectId, child: ObjectId) -> Result<MutationEffect> {
        let w = self.weak();
        let node = w.node(parent).ok_or(CoreError::UnknownObject(parent))?;
        let pos = node.universe().position(child).ok_or(CoreError::UnknownObject(child))?;
        // The child must stay reachable without this edge; callers that
        // mean "remove the subtree" should use DeleteObject.
        if !reachable(w, None, Some((parent, child))).contains(&child) {
            return Err(CoreError::Unreachable(child));
        }
        let mut cand = self.clone();
        let node = cand.weak().node(parent).ok_or(CoreError::UnknownObject(parent))?;
        let old_u = node.universe().clone();
        let new_u = ChildUniverse::from_members(
            old_u.iter().filter(|&(p, _, _)| p != pos).map(|(_, c, l)| (c, l)),
        );
        let new_opf = match cand.opf(parent) {
            Some(o) => Some(shrink_opf(o, &[pos], &old_u, &new_u)?),
            None => None,
        };
        if let Some(n) = cand.weak_mut().node_mut(parent) {
            n.set_universe(new_u);
        }
        let node = cand.weak().node(parent).ok_or(CoreError::UnknownObject(parent))?;
        check_cards(parent, node)?;
        if let Some(opf) = new_opf {
            check_opf_pc(parent, node, &opf)?;
            cand.opf_map_mut().insert(parent, opf);
        }
        *self = cand;
        Ok(MutationEffect::new(vec![parent], true))
    }

    fn apply_delete(&mut self, object: ObjectId) -> Result<MutationEffect> {
        if object == self.root() {
            return Err(CoreError::CannotDeleteRoot);
        }
        if !self.weak().contains(object) {
            return Err(CoreError::UnknownObject(object));
        }
        let reached = reachable(self.weak(), Some(object), None);
        let removed: Vec<ObjectId> =
            self.weak().objects().filter(|o| !reached.contains(o)).collect();
        let mut cand = self.clone();
        let mut dirty: Vec<ObjectId> = removed.clone();
        // Condition every retained parent on the removed members' absence.
        for &p in &reached {
            let Some(node) = cand.weak().node(p) else { continue };
            let gone: Vec<u32> = node
                .universe()
                .iter()
                .filter(|(_, c, _)| removed.contains(c))
                .map(|(pos, _, _)| pos)
                .collect();
            if gone.is_empty() {
                continue;
            }
            let old_u = node.universe().clone();
            let new_u = ChildUniverse::from_members(
                old_u.iter().filter(|(pos, _, _)| !gone.contains(pos)).map(|(_, c, l)| (c, l)),
            );
            let new_opf = match cand.opf(p) {
                Some(o) => Some(shrink_opf(o, &gone, &old_u, &new_u)?),
                None => None,
            };
            if let Some(n) = cand.weak_mut().node_mut(p) {
                n.set_universe(new_u);
            }
            let node = cand.weak().node(p).ok_or(CoreError::UnknownObject(p))?;
            check_cards(p, node)?;
            if let Some(opf) = new_opf {
                check_opf_pc(p, node, &opf)?;
                cand.opf_map_mut().insert(p, opf);
            }
            dirty.push(p);
        }
        for &r in &removed {
            cand.weak_mut().remove_node(r);
            cand.opf_map_mut().remove(r);
            cand.vpf_map_mut().remove(r);
        }
        *self = cand;
        let mut effect = MutationEffect::new(dirty, true);
        effect.removed = removed;
        effect.removed.sort_unstable();
        Ok(effect)
    }

    fn apply_set_edge(
        &mut self,
        parent: ObjectId,
        child: ObjectId,
        prob: f64,
    ) -> Result<MutationEffect> {
        check_prob(child, prob)?;
        let node = self.weak().node(parent).ok_or(CoreError::UnknownObject(parent))?;
        let pos = node.universe().position(child).ok_or(CoreError::UnknownObject(child))?;
        let opf = self.opf(parent).ok_or(CoreError::MissingOpf(parent))?;
        let m = opf.marginal_present(pos);
        if (m - prob).abs() <= PROB_EPS {
            return Ok(MutationEffect::noop());
        }
        let new_opf = match opf {
            Opf::Independent(i) => {
                let mut probs = i.probs().to_vec();
                probs.resize(node.universe().len().max(pos as usize + 1), 0.0);
                probs[pos as usize] = prob;
                Opf::Independent(crate::opf::IndependentOpf::new(probs))
            }
            Opf::Table(t) => Opf::Table(remix_table(t, pos, m, prob)?),
            Opf::LabelProduct(l) => {
                let mut tables: Vec<(Label, OpfTable)> = Vec::new();
                let mut hit = false;
                for (pl, slice, t) in l.parts() {
                    if slice.contains_pos(pos) && !hit {
                        hit = true;
                        let part_m = t.marginal_present(pos);
                        tables.push((*pl, remix_table(t, pos, part_m, prob)?));
                    } else {
                        tables.push((*pl, t.clone()));
                    }
                }
                if !hit {
                    // The position belongs to no part: its marginal is
                    // structurally 0 and cannot be raised in place.
                    return Err(CoreError::DegenerateMass { total: 0.0 });
                }
                Opf::LabelProduct(LabelProductOpf::new(node.universe(), tables))
            }
        };
        check_opf_pc(parent, node, &new_opf)?;
        self.opf_map_mut().insert(parent, new_opf);
        Ok(MutationEffect::new(vec![parent], false))
    }

    fn apply_set_value(
        &mut self,
        object: ObjectId,
        value: &Value,
        prob: f64,
    ) -> Result<MutationEffect> {
        check_prob(object, prob)?;
        let node = self.weak().node(object).ok_or(CoreError::UnknownObject(object))?;
        let leaf = node.leaf().ok_or(CoreError::MissingVpf(object))?;
        let ty = self
            .catalog()
            .types()
            .try_resolve(leaf.ty)
            .ok_or(CoreError::MissingVpf(object))?;
        if !ty.contains(value) {
            return Err(CoreError::VpfValueOutsideDomain { object });
        }
        let vpf = self.vpf(object).ok_or(CoreError::MissingVpf(object))?;
        let old = vpf.prob(value);
        if (old - prob).abs() <= PROB_EPS {
            return Ok(MutationEffect::noop());
        }
        let rest = 1.0 - old;
        if rest <= 0.0 {
            // All mass already on `value`; no other entries to scale up.
            return Err(CoreError::DegenerateMass { total: rest });
        }
        let scale = (1.0 - prob) / rest;
        let mut entries: Vec<(Value, f64)> = vec![(value.clone(), prob)];
        for (v, p) in vpf.iter() {
            if v != value && p * scale > 0.0 {
                entries.push((v.clone(), p * scale));
            }
        }
        self.vpf_map_mut().insert(object, Vpf::from_entries(entries));
        Ok(MutationEffect::new(vec![object], false))
    }
}

/// `P(pos present) := prob` by remixing the conditioned distributions:
/// present-sets scale by `prob / m`, absent-sets by `(1−prob) / (1−m)`.
fn remix_table(t: &OpfTable, pos: u32, m: f64, prob: f64) -> Result<OpfTable> {
    if prob > 0.0 && m <= 0.0 {
        return Err(CoreError::DegenerateMass { total: m });
    }
    if prob < 1.0 && m >= 1.0 {
        return Err(CoreError::DegenerateMass { total: 1.0 - m });
    }
    let mut out = OpfTable::new();
    for (s, p) in t.iter() {
        let w = if s.contains_pos(pos) {
            if m > 0.0 {
                prob / m
            } else {
                0.0
            }
        } else if m < 1.0 {
            (1.0 - prob) / (1.0 - m)
        } else {
            0.0
        };
        if p * w > 0.0 {
            out.add(s.clone(), p * w);
        }
    }
    Ok(out)
}

/// True when `from` reaches `to` over full child universes.
fn reaches(w: &WeakInstance, from: ObjectId, to: ObjectId) -> bool {
    let mut seen: HashSet<ObjectId> = HashSet::new();
    let mut stack = vec![from];
    seen.insert(from);
    while let Some(o) = stack.pop() {
        if o == to {
            return true;
        }
        let Some(node) = w.node(o) else { continue };
        for (_, c, _) in node.universe().iter() {
            if seen.insert(c) {
                stack.push(c);
            }
        }
    }
    false
}

// ---------------------------------------------------------------------
// Ops-file surface syntax
// ---------------------------------------------------------------------

/// Parses a mutation ops file (one op per line, `#` comments):
///
/// ```text
/// INSERT <new-name> UNDER <parent> LABEL <label> PROB <p>
/// DELETE <object>
/// LINK <parent> <label> <child> PROB <p>
/// UNLINK <parent> <child>
/// SETEDGE <parent> <child> PROB <p>
/// SETVAL <leaf> STR <v>|INT <n>|FLOAT <x>|BOOL <b> PROB <p>
/// ```
///
/// Object and label names resolve against `pi`'s catalog (except the
/// fresh `INSERT` name); failures surface as [`CoreError::BadOps`] with
/// the 1-based line number, so malformed files are distinguishable from
/// operationally-failed applies.
pub fn parse_ops(pi: &ProbInstance, text: &str) -> Result<Vec<Mutation>> {
    let mut ops = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let src = raw.split('#').next().unwrap_or("").trim();
        if src.is_empty() {
            continue;
        }
        ops.push(parse_op(pi, line, src)?);
    }
    Ok(ops)
}

fn bad(line: usize, msg: impl Into<String>) -> CoreError {
    CoreError::BadOps { line, msg: msg.into() }
}

fn parse_op(pi: &ProbInstance, line: usize, src: &str) -> Result<Mutation> {
    let toks: Vec<&str> = src.split_whitespace().collect();
    let cat = pi.catalog();
    let oid = |t: &str| -> Result<ObjectId> {
        cat.find_object(t)
            .filter(|&o| pi.weak().contains(o))
            .ok_or_else(|| bad(line, format!("unknown object {t:?}")))
    };
    let lid = |t: &str| -> Result<Label> {
        cat.find_label(t).ok_or_else(|| bad(line, format!("unknown label {t:?}")))
    };
    let prob = |t: &str| -> Result<f64> {
        t.parse::<f64>().map_err(|_| bad(line, format!("bad probability {t:?}")))
    };
    let kw = |got: &str, want: &str| -> Result<()> {
        if got.eq_ignore_ascii_case(want) {
            Ok(())
        } else {
            Err(bad(line, format!("expected {want}, got {got:?}")))
        }
    };
    let arity = |n: usize| -> Result<()> {
        if toks.len() == n {
            Ok(())
        } else {
            Err(bad(line, format!("expected {n} tokens, got {}", toks.len())))
        }
    };
    match toks.first().map(|t| t.to_ascii_uppercase()).as_deref() {
        Some("INSERT") => {
            arity(8)?;
            kw(toks[2], "UNDER")?;
            kw(toks[4], "LABEL")?;
            kw(toks[6], "PROB")?;
            Ok(Mutation::InsertObject {
                name: toks[1].to_string(),
                parent: oid(toks[3])?,
                label: lid(toks[5])?,
                prob: prob(toks[7])?,
            })
        }
        Some("DELETE") => {
            arity(2)?;
            Ok(Mutation::DeleteObject { object: oid(toks[1])? })
        }
        Some("LINK") => {
            arity(6)?;
            kw(toks[4], "PROB")?;
            Ok(Mutation::AddEdge {
                parent: oid(toks[1])?,
                label: lid(toks[2])?,
                child: oid(toks[3])?,
                prob: prob(toks[5])?,
            })
        }
        Some("UNLINK") => {
            arity(3)?;
            Ok(Mutation::RemoveEdge { parent: oid(toks[1])?, child: oid(toks[2])? })
        }
        Some("SETEDGE") => {
            arity(5)?;
            kw(toks[3], "PROB")?;
            Ok(Mutation::SetEdgeProb {
                parent: oid(toks[1])?,
                child: oid(toks[2])?,
                prob: prob(toks[4])?,
            })
        }
        Some("SETVAL") => {
            arity(6)?;
            kw(toks[4], "PROB")?;
            let value = match toks[2].to_ascii_uppercase().as_str() {
                "STR" => Value::str(toks[3]),
                "INT" => Value::Int(
                    toks[3]
                        .parse::<i64>()
                        .map_err(|_| bad(line, format!("bad int {:?}", toks[3])))?,
                ),
                "FLOAT" => Value::Float(
                    toks[3]
                        .parse::<f64>()
                        .map_err(|_| bad(line, format!("bad float {:?}", toks[3])))?,
                ),
                "BOOL" => Value::Bool(
                    toks[3]
                        .parse::<bool>()
                        .map_err(|_| bad(line, format!("bad bool {:?}", toks[3])))?,
                ),
                other => return Err(bad(line, format!("unknown value kind {other:?}"))),
            };
            Ok(Mutation::SetValueProb {
                object: oid(toks[1])?,
                value,
                prob: prob(toks[5])?,
            })
        }
        Some(other) => Err(bad(line, format!("unknown op {other:?}"))),
        None => Err(bad(line, "empty op")),
    }
}

/// Renders `ops` back into the surface syntax (inverse of
/// [`parse_ops`] for every op kind the syntax covers; `ReplaceOpf` /
/// `ReplaceVpf` have no textual form and render as comments).
pub fn render_ops(pi: &ProbInstance, ops: &[Mutation]) -> String {
    let cat = pi.catalog();
    let on = |o: ObjectId| cat.objects().try_resolve(o).unwrap_or("?").to_string();
    let ln = |l: Label| cat.labels().try_resolve(l).unwrap_or("?").to_string();
    let mut out = String::new();
    for m in ops {
        let lineout = match m {
            Mutation::InsertObject { name, parent, label, prob } => {
                format!("INSERT {name} UNDER {} LABEL {} PROB {prob}", on(*parent), ln(*label))
            }
            Mutation::DeleteObject { object } => format!("DELETE {}", on(*object)),
            Mutation::AddEdge { parent, label, child, prob } => {
                format!("LINK {} {} {} PROB {prob}", on(*parent), ln(*label), on(*child))
            }
            Mutation::RemoveEdge { parent, child } => {
                format!("UNLINK {} {}", on(*parent), on(*child))
            }
            Mutation::SetEdgeProb { parent, child, prob } => {
                format!("SETEDGE {} {} PROB {prob}", on(*parent), on(*child))
            }
            Mutation::SetValueProb { object, value, prob } => {
                let v = match value {
                    Value::Str(s) => format!("STR {s}"),
                    Value::Int(n) => format!("INT {n}"),
                    Value::Float(x) => format!("FLOAT {x}"),
                    Value::Bool(b) => format!("BOOL {b}"),
                };
                format!("SETVAL {} {v} PROB {prob}", on(*object))
            }
            Mutation::ReplaceOpf { object, .. } => {
                format!("# REPLACE-OPF {} (no textual form)", on(*object))
            }
            Mutation::ReplaceVpf { object, .. } => {
                format!("# REPLACE-VPF {} (no textual form)", on(*object))
            }
        };
        out.push_str(&lineout);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig2_instance;

    fn oid(pi: &ProbInstance, n: &str) -> ObjectId {
        pi.oid(n).unwrap()
    }

    #[test]
    fn set_edge_prob_changes_marginal_and_validates() {
        let mut pi = fig2_instance();
        let (r, b1) = (oid(&pi, "R"), oid(&pi, "B1"));
        let pos = pi.weak().node(r).unwrap().universe().position(b1).unwrap();
        let before = pi.opf(r).unwrap().marginal_present(pos);
        assert!(before > 0.0 && before < 1.0);
        let m = Mutation::SetEdgeProb { parent: r, child: b1, prob: 0.25 };
        let effect = pi.apply(&m).unwrap();
        assert_eq!(effect.dirty, vec![r]);
        assert!(!effect.structural);
        let after = pi.opf(r).unwrap().marginal_present(pos);
        assert!((after - 0.25).abs() < 1e-12, "marginal {after}");
        pi.validate().unwrap();
    }

    #[test]
    fn set_edge_prob_is_noop_at_current_marginal() {
        let mut pi = fig2_instance();
        let (r, b1) = (oid(&pi, "R"), oid(&pi, "B1"));
        let pos = pi.weak().node(r).unwrap().universe().position(b1).unwrap();
        let m = pi.opf(r).unwrap().marginal_present(pos);
        let effect =
            pi.apply(&Mutation::SetEdgeProb { parent: r, child: b1, prob: m }).unwrap();
        assert!(effect.dirty.is_empty());
    }

    #[test]
    fn insert_then_delete_roundtrips_validity() {
        let mut pi = fig2_instance();
        let b1 = oid(&pi, "B1");
        let label = pi.lid("author").unwrap();
        let before = pi.object_count();
        let effect = pi
            .apply(&Mutation::InsertObject {
                name: "A9".into(),
                parent: b1,
                label,
                prob: 0.0, // card(B1, author) = [1,2] is already saturated
            })
            .unwrap();
        assert!(effect.structural);
        let a9 = effect.inserted.unwrap();
        assert_eq!(pi.object_count(), before + 1);
        pi.validate().unwrap();
        let effect = pi.apply(&Mutation::DeleteObject { object: a9 }).unwrap();
        assert_eq!(effect.removed, vec![a9]);
        assert_eq!(pi.object_count(), before);
        pi.validate().unwrap();
    }

    #[test]
    fn insert_violating_card_max_is_rejected_atomically() {
        let mut pi = fig2_instance();
        let snapshot = pi.render();
        let b1 = oid(&pi, "B1");
        let label = pi.lid("author").unwrap();
        // card(B1, author) = [1,2]; a third author with positive presence
        // probability puts mass outside PC(B1).
        let err = pi
            .apply(&Mutation::InsertObject {
                name: "A9".into(),
                parent: b1,
                label,
                prob: 0.5,
            })
            .unwrap_err();
        assert!(matches!(err, CoreError::OpfEntryOutsidePc { .. }), "{err}");
        assert_eq!(pi.render(), snapshot, "failed insert must not change the instance");
        assert!(pi.catalog().find_object("A9").is_none(), "catalog must stay clean");
    }

    #[test]
    fn delete_cascades_to_exclusive_subtree() {
        let mut pi = fig2_instance();
        let b3 = oid(&pi, "B3");
        let t2 = oid(&pi, "T2");
        let effect = pi.apply(&Mutation::DeleteObject { object: b3 }).unwrap();
        // B3's title T2 is exclusive to B3; A3 under B3 is shared with B2
        // and I2 stays reachable through A2.
        assert!(effect.removed.contains(&b3));
        assert!(effect.removed.contains(&t2));
        assert!(pi.weak().contains(oid(&pi, "A3")));
        assert!(pi.weak().contains(oid(&pi, "I2")));
        pi.validate().unwrap();
    }

    #[test]
    fn delete_root_and_unknown_are_typed_errors() {
        let mut pi = fig2_instance();
        let r = oid(&pi, "R");
        assert!(matches!(
            pi.apply(&Mutation::DeleteObject { object: r }),
            Err(CoreError::CannotDeleteRoot)
        ));
        assert!(matches!(
            pi.apply(&Mutation::DeleteObject { object: ObjectId::from_raw(9999) }),
            Err(CoreError::UnknownObject(_))
        ));
    }

    #[test]
    fn unlink_exclusive_child_is_unreachable() {
        let mut pi = fig2_instance();
        // T2 has no parent besides B3: unlinking would orphan it.
        let (b3, t2) = (oid(&pi, "B3"), oid(&pi, "T2"));
        let err = pi.apply(&Mutation::RemoveEdge { parent: b3, child: t2 }).unwrap_err();
        assert!(matches!(err, CoreError::Unreachable(_)), "{err}");
        pi.validate().unwrap();
    }

    #[test]
    fn unlink_forced_shared_child_is_degenerate() {
        // R forces both M and X present; M also forces X. Unlinking
        // R → X keeps X reachable through M, but conditioning R's OPF on
        // X's absence has zero surviving mass (§6.1 renormalisation is
        // undefined).
        let mut b = ProbInstance::builder();
        let r = b.object("R");
        let m = b.object("M");
        let x = b.object("X");
        b.lch("R", "a", &["M", "X"]);
        b.lch("M", "a", &["X"]);
        b.opf_table("R", &[(&["M", "X"], 1.0)]);
        b.opf_table("M", &[(&["X"], 1.0)]);
        b.opf_table("X", &[(&[], 1.0)]);
        let mut pi = b.build(r).unwrap();
        pi.validate().unwrap();
        let err = pi.apply(&Mutation::RemoveEdge { parent: r, child: x }).unwrap_err();
        assert!(matches!(err, CoreError::DegenerateMass { .. }), "{err}");
        let _ = m;
        pi.validate().unwrap();
    }

    #[test]
    fn unlink_optional_child_renormalises() {
        let mut pi = fig2_instance();
        // card(B1, title) = [0,1]: T1 is optional under B1.
        let (b1, t1) = (oid(&pi, "B1"), oid(&pi, "T1"));
        let err = pi.apply(&Mutation::RemoveEdge { parent: b1, child: t1 });
        // T1 has no other parent, so the unlink orphans it — typed error.
        assert!(matches!(err, Err(CoreError::Unreachable(_))), "{err:?}");
        // Deleting instead cascades.
        pi.apply(&Mutation::DeleteObject { object: t1 }).unwrap();
        assert!(!pi.weak().contains(t1));
        pi.validate().unwrap();
    }

    #[test]
    fn link_and_unlink_shared_child() {
        let mut pi = fig2_instance();
        let (b1, i1) = (oid(&pi, "B1"), oid(&pi, "I1"));
        let label = pi.lid("institution").unwrap();
        // I1 is already a child of A1 and A2; link it under B1 too.
        pi.apply(&Mutation::AddEdge { parent: b1, label, child: i1, prob: 0.5 }).unwrap();
        pi.validate().unwrap();
        // Now unlink is fine: I1 stays reachable through A1/A2.
        pi.apply(&Mutation::RemoveEdge { parent: b1, child: i1 }).unwrap();
        pi.validate().unwrap();
    }

    #[test]
    fn add_edge_cycle_is_rejected() {
        let mut pi = fig2_instance();
        let (b1, r) = (oid(&pi, "B1"), oid(&pi, "R"));
        let label = pi.lid("book").unwrap();
        let err =
            pi.apply(&Mutation::AddEdge { parent: b1, label, child: r, prob: 0.5 }).unwrap_err();
        assert!(matches!(err, CoreError::CycleDetected(_)), "{err}");
    }

    #[test]
    fn set_value_prob_rescales_rest() {
        let mut pi = fig2_instance();
        let t1 = oid(&pi, "T1");
        let vqdb = Value::str("VQDB");
        let lore = Value::str("Lore");
        let before_lore = pi.vpf(t1).unwrap().prob(&lore);
        pi.apply(&Mutation::SetValueProb { object: t1, value: vqdb.clone(), prob: 0.9 })
            .unwrap();
        let v = pi.vpf(t1).unwrap();
        assert!((v.prob(&vqdb) - 0.9).abs() < 1e-12);
        assert!((v.total() - 1.0).abs() < 1e-9);
        assert!(v.prob(&lore) < before_lore);
        pi.validate().unwrap();
    }

    #[test]
    fn set_value_outside_domain_is_typed() {
        let mut pi = fig2_instance();
        let t1 = oid(&pi, "T1");
        let err = pi
            .apply(&Mutation::SetValueProb { object: t1, value: Value::Int(7), prob: 0.5 })
            .unwrap_err();
        assert!(matches!(err, CoreError::VpfValueOutsideDomain { .. }), "{err}");
    }

    #[test]
    fn replace_opf_validates_support() {
        let mut pi = fig2_instance();
        let b1 = oid(&pi, "B1");
        let u = pi.weak().node(b1).unwrap().universe().clone();
        // All-empty support violates card(B1, author) = [1,2].
        let bogus = Opf::Table(OpfTable::from_entries([(ChildSet::empty(&u), 1.0)]));
        let err = pi.apply(&Mutation::ReplaceOpf { object: b1, opf: bogus }).unwrap_err();
        assert!(matches!(err, CoreError::OpfEntryOutsidePc { .. }), "{err}");
        // Replacing with its own (valid) OPF is fine.
        let own = pi.opf(b1).unwrap().clone();
        pi.apply(&Mutation::ReplaceOpf { object: b1, opf: own }).unwrap();
        pi.validate().unwrap();
    }

    #[test]
    fn ops_roundtrip_through_text() {
        let pi = fig2_instance();
        let ops = vec![
            Mutation::SetEdgeProb {
                parent: oid(&pi, "R"),
                child: oid(&pi, "B1"),
                prob: 0.25,
            },
            Mutation::SetValueProb {
                object: oid(&pi, "T1"),
                value: Value::str("VQDB"),
                prob: 0.9,
            },
            Mutation::InsertObject {
                name: "B9".into(),
                parent: oid(&pi, "R"),
                label: pi.lid("book").unwrap(),
                prob: 0.0,
            },
            Mutation::RemoveEdge { parent: oid(&pi, "B1"), child: oid(&pi, "T1") },
            Mutation::DeleteObject { object: oid(&pi, "B3") },
        ];
        let text = render_ops(&pi, &ops);
        let back = parse_ops(&pi, &text).unwrap();
        assert_eq!(back, ops);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let pi = fig2_instance();
        let err = parse_ops(&pi, "# fine\nDELETE B1\nFROB x\n").unwrap_err();
        assert!(matches!(err, CoreError::BadOps { line: 3, .. }), "{err}");
        let err = parse_ops(&pi, "DELETE NOSUCH\n").unwrap_err();
        assert!(matches!(err, CoreError::BadOps { line: 1, .. }), "{err}");
    }

    #[test]
    fn structural_mutations_keep_compact_opfs_valid() {
        // An Independent-OPF parent: three children, no binding cards.
        let mut b = ProbInstance::builder();
        let r = b.object("R");
        b.lch("R", "a", &["X", "Y", "Z"]);
        b.opf(r, Opf::Independent(crate::opf::IndependentOpf::new(vec![0.5, 0.5, 0.5])));
        let mut pi = b.build(r).unwrap();
        pi.validate().unwrap();
        let z = pi.oid("Z").unwrap();
        // Shrink: delete Z; the Independent OPF drops its slot.
        pi.apply(&Mutation::DeleteObject { object: z }).unwrap();
        pi.validate().unwrap();
        assert_eq!(pi.weak().node(pi.root()).unwrap().universe().len(), 2);
        // Grow: insert a fresh child with p = 0.25.
        let label = pi.lid("a").unwrap();
        pi.apply(&Mutation::InsertObject {
            name: "W".into(),
            parent: pi.root(),
            label,
            prob: 0.25,
        })
        .unwrap();
        pi.validate().unwrap();
        let w = pi.oid("W").unwrap();
        let pos = pi.weak().node(pi.root()).unwrap().universe().position(w).unwrap();
        let marg = pi.opf(pi.root()).unwrap().marginal_present(pos);
        assert!((marg - 0.25).abs() < 1e-12, "{marg}");
    }
}
