//! Resource governance for query evaluation and model expansion.
//!
//! PXML evaluation hides exponential cliffs — `PC(o)` expansion
//! (Definition 3.6), `Domain(W)` enumeration (Definition 4.1) and DAG
//! marginalisation by inclusion–exclusion can all blow up on dense
//! instances, and the complexity results for probabilistic XML say this
//! is inherent. A [`Budget`] makes the work bound *explicit*: it carries
//! a work-step counter, a byte-accounting ceiling, an optional wall-clock
//! deadline and a cooperative cancellation token, and every expansion
//! loop in the workspace charges it before doing more work.
//!
//! Exhaustion is never a panic and never silent: [`Budget::charge`]
//! returns a typed [`Exhausted`] record naming the resource that ran
//! out, how much was spent and what the limit was. Callers either
//! propagate it ([`CoreError::Exhausted`](crate::CoreError::Exhausted))
//! or degrade to an interval answer (see `pxml-query`'s
//! `DegradePolicy`).
//!
//! ## Determinism
//!
//! Step accounting is deterministic for a fixed query and instance: the
//! counter is private to the budget, work is charged in evaluation
//! order, and nothing about thread scheduling changes *what* is charged.
//! Wall-clock and cancellation exhaustion are inherently racy; only
//! [`Resource::Steps`] and [`Resource::Bytes`] expose reproducible
//! `spent` values.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The resource dimension that ran out.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resource {
    /// The work-step counter crossed its limit.
    Steps,
    /// A byte-accounted allocation ceiling was crossed.
    Bytes,
    /// The wall-clock deadline passed (`spent`/`limit` in milliseconds).
    WallClock,
    /// The cooperative cancellation token was set.
    Cancelled,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Steps => write!(f, "steps"),
            Resource::Bytes => write!(f, "bytes"),
            Resource::WallClock => write!(f, "wall-clock"),
            Resource::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Typed exhaustion record: which resource ran out, how much was spent
/// when it did, and the configured limit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exhausted {
    /// The resource dimension that ran out.
    pub resource: Resource,
    /// Amount spent at the moment of exhaustion (steps, bytes or ms).
    pub spent: u64,
    /// The configured limit for that resource (0 for cancellation).
    pub limit: u64,
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.resource {
            Resource::Cancelled => write!(f, "evaluation cancelled after {} steps", self.spent),
            Resource::WallClock => write!(
                f,
                "wall-clock deadline exceeded ({} ms spent, limit {} ms)",
                self.spent, self.limit
            ),
            r => write!(f, "{} budget exhausted ({} spent, limit {})", r, self.spent, self.limit),
        }
    }
}

impl std::error::Error for Exhausted {}

/// A cloneable cooperative cancellation token. Cloning shares the flag,
/// so one token can cancel every query of a batch.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; all budgets holding this token observe it
    /// at their next charge.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A per-query (or per-batch) resource budget.
///
/// Construction is builder-style from [`Budget::unlimited`]; every limit
/// left unset stays infinite, so an unlimited budget costs one relaxed
/// atomic add per charge and nothing else.
#[derive(Debug)]
pub struct Budget {
    steps: AtomicU64,
    max_steps: u64,
    bytes: AtomicU64,
    max_bytes: u64,
    started: Instant,
    deadline: Option<Instant>,
    timeout_ms: u64,
    cancel: Option<CancelToken>,
    polls: AtomicU64,
}

impl Default for Budget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl Budget {
    /// A budget with every limit infinite: charges always succeed.
    pub fn unlimited() -> Self {
        Budget {
            steps: AtomicU64::new(0),
            max_steps: u64::MAX,
            bytes: AtomicU64::new(0),
            max_bytes: u64::MAX,
            started: Instant::now(),
            deadline: None,
            timeout_ms: 0,
            cancel: None,
            polls: AtomicU64::new(0),
        }
    }

    /// Caps the work-step counter at `max_steps`.
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Caps byte-accounted allocations at `max_bytes`.
    pub fn with_max_bytes(mut self, max_bytes: u64) -> Self {
        self.max_bytes = max_bytes;
        self
    }

    /// Sets a wall-clock deadline `timeout` from now.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.started = Instant::now();
        self.deadline = Some(self.started + timeout);
        self.timeout_ms = timeout.as_millis().min(u64::MAX as u128) as u64;
        self
    }

    /// Attaches a shared cancellation token.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Whether every limit is infinite and no token is attached.
    pub fn is_unlimited(&self) -> bool {
        self.max_steps == u64::MAX
            && self.max_bytes == u64::MAX
            && self.deadline.is_none()
            && self.cancel.is_none()
    }

    /// Work steps charged so far.
    pub fn steps_spent(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Bytes charged so far.
    pub fn bytes_spent(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Deadline/cancellation polls performed so far (checkpoint events:
    /// one per [`Budget::checkpoint`] call plus one per 64-step charge
    /// stride). Exposed so observability layers can report how often a
    /// governed evaluation actually looked at the clock.
    pub fn polls_performed(&self) -> u64 {
        self.polls.load(Ordering::Relaxed)
    }

    /// Charges `n` work steps. Deadline and cancellation are polled when
    /// the counter crosses a 64-step stride (and always on the first
    /// charge) so hot loops pay one relaxed atomic add in the common
    /// case.
    #[inline]
    pub fn charge(&self, n: u64) -> Result<(), Exhausted> {
        let before = self.steps.fetch_add(n, Ordering::Relaxed);
        let after = before.saturating_add(n);
        if after > self.max_steps {
            return Err(Exhausted {
                resource: Resource::Steps,
                spent: after,
                limit: self.max_steps,
            });
        }
        if before == 0 || (before >> 6) != (after >> 6) {
            self.poll(after)?;
        }
        Ok(())
    }

    /// Forces a deadline/cancellation poll regardless of stride — used
    /// before starting a coarse unit of work (a whole query, a whole
    /// operator application).
    pub fn checkpoint(&self) -> Result<(), Exhausted> {
        self.poll(self.steps_spent())
    }

    fn poll(&self, spent_steps: u64) -> Result<(), Exhausted> {
        self.polls.fetch_add(1, Ordering::Relaxed);
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(Exhausted {
                    resource: Resource::Cancelled,
                    spent: spent_steps,
                    limit: 0,
                });
            }
        }
        if let Some(deadline) = self.deadline {
            let now = Instant::now();
            if now > deadline {
                let spent_ms =
                    now.duration_since(self.started).as_millis().min(u64::MAX as u128) as u64;
                return Err(Exhausted {
                    resource: Resource::WallClock,
                    spent: spent_ms,
                    limit: self.timeout_ms,
                });
            }
        }
        Ok(())
    }

    /// Charges `n` bytes against the allocation ceiling. Unlike steps,
    /// bytes can be released again with [`Budget::release_bytes`].
    pub fn charge_bytes(&self, n: u64) -> Result<(), Exhausted> {
        let before = self.bytes.fetch_add(n, Ordering::Relaxed);
        let after = before.saturating_add(n);
        if after > self.max_bytes {
            return Err(Exhausted {
                resource: Resource::Bytes,
                spent: after,
                limit: self.max_bytes,
            });
        }
        Ok(())
    }

    /// Returns previously charged bytes to the ceiling (e.g. when a
    /// cache entry is evicted).
    pub fn release_bytes(&self, n: u64) {
        let mut cur = self.bytes.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self.bytes.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    #[cfg(test)]
    fn poll_now(&self) -> Result<(), Exhausted> {
        self.poll(self.steps_spent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            b.charge(7).unwrap();
        }
        b.charge_bytes(1 << 40).unwrap();
        assert!(b.is_unlimited());
        assert_eq!(b.steps_spent(), 70_000);
    }

    #[test]
    fn step_limit_exhausts_with_exact_accounting() {
        let b = Budget::unlimited().with_max_steps(10);
        for _ in 0..10 {
            b.charge(1).unwrap();
        }
        let e = b.charge(1).unwrap_err();
        assert_eq!(e.resource, Resource::Steps);
        assert_eq!(e.spent, 11);
        assert_eq!(e.limit, 10);
    }

    #[test]
    fn budget_of_one_exhausts_on_second_step() {
        let b = Budget::unlimited().with_max_steps(1);
        b.charge(1).unwrap();
        assert!(b.charge(1).is_err());
    }

    #[test]
    fn byte_ceiling_charges_and_releases() {
        let b = Budget::unlimited().with_max_bytes(100);
        b.charge_bytes(60).unwrap();
        assert!(b.charge_bytes(60).is_err());
        b.release_bytes(200); // saturates at zero
        b.charge_bytes(100).unwrap();
    }

    #[test]
    fn expired_deadline_reports_wall_clock() {
        let b = Budget::unlimited().with_timeout(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        let e = b.poll_now().unwrap_err();
        assert_eq!(e.resource, Resource::WallClock);
        assert!(e.spent >= 1);
    }

    #[test]
    fn polls_are_counted_at_checkpoints_and_strides() {
        let b = Budget::unlimited();
        assert_eq!(b.polls_performed(), 0);
        b.checkpoint().unwrap();
        assert_eq!(b.polls_performed(), 1);
        b.charge(1).unwrap(); // first charge always polls
        assert_eq!(b.polls_performed(), 2);
        b.charge(1).unwrap(); // within the first 64-step stride: no poll
        assert_eq!(b.polls_performed(), 2);
        b.charge(64).unwrap(); // crosses a stride boundary
        assert_eq!(b.polls_performed(), 3);
    }

    #[test]
    fn cancel_token_is_shared() {
        let token = CancelToken::new();
        let b = Budget::unlimited().with_cancel_token(token.clone());
        b.charge(1).unwrap();
        token.cancel();
        let e = b.checkpoint().unwrap_err();
        assert_eq!(e.resource, Resource::Cancelled);
    }

    #[test]
    fn exhausted_messages_name_the_resource() {
        let e = Exhausted { resource: Resource::Steps, spent: 5, limit: 4 };
        assert!(e.to_string().contains("steps"));
        let e = Exhausted { resource: Resource::WallClock, spent: 12, limit: 10 };
        assert!(e.to_string().contains("ms"));
    }
}
