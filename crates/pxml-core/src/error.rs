//! Error types for the core data model.

use std::fmt;

use crate::ids::{Label, ObjectId};

/// The tolerance used when checking that probability distributions sum to 1
/// and when comparing probabilities for equality.
pub const PROB_EPS: f64 = 1e-9;

/// Errors raised while constructing or validating instances.
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)] // variant payload fields are self-describing
pub enum CoreError {
    /// The instance has no root object.
    MissingRoot,
    /// An object is in `V` but not reachable from the root.
    Unreachable(ObjectId),
    /// An edge or `lch` entry refers to an object not in `V`.
    UnknownObject(ObjectId),
    /// The weak instance graph contains a cycle (violates Definition 4.3).
    CycleDetected(ObjectId),
    /// The same child appears under two different labels of one parent, so
    /// edge labels of compatible instances would be ambiguous.
    AmbiguousChildLabel { parent: ObjectId, child: ObjectId, first: Label, second: Label },
    /// The same child is listed twice under one `(object, label)` pair.
    DuplicateChild { parent: ObjectId, child: ObjectId, label: Label },
    /// A cardinality interval has `min > max` or is unsatisfiable given
    /// `|lch(o, l)|`.
    BadCardinality { object: ObjectId, label: Label, min: u32, max: u32, available: u32 },
    /// An OPF's probabilities do not sum to 1 (within [`PROB_EPS`]).
    OpfNotNormalized { object: ObjectId, sum: f64 },
    /// An OPF assigns probability to a child set outside `PC(o)`.
    OpfEntryOutsidePc { object: ObjectId },
    /// A probability is negative or greater than 1.
    BadProbability { object: ObjectId, p: f64 },
    /// A distribution's total mass is zero, negative or non-finite, so it
    /// cannot be renormalised (the ε-normalisation of Section 6.1 is
    /// undefined).
    DegenerateMass { total: f64 },
    /// A VPF's probabilities do not sum to 1 (within [`PROB_EPS`]).
    VpfNotNormalized { object: ObjectId, sum: f64 },
    /// A VPF assigns probability to a value outside `dom(τ(o))`.
    VpfValueOutsideDomain { object: ObjectId },
    /// A non-leaf object is missing its OPF.
    MissingOpf(ObjectId),
    /// A typed leaf object is missing its VPF.
    MissingVpf(ObjectId),
    /// A leaf object (one with a type/value) also has children.
    LeafWithChildren(ObjectId),
    /// A leaf object's value is outside its type's domain.
    ValueOutsideDomain(ObjectId),
    /// A leaf carries a value but no type.
    ValueWithoutType(ObjectId),
    /// An operation that assumes tree-shaped structure was applied to an
    /// object with multiple parents.
    NotTreeShaped(ObjectId),
    /// A referenced name was not found in the catalog.
    NameNotFound(String),
    /// Two instances that must share a catalog do not.
    CatalogMismatch,
    /// The instance is too large for an exact possible-worlds computation.
    TooManyWorlds { limit: u64 },
    /// A potential-child-set expansion would exceed the given cap
    /// (`PC(o)` of Definition 3.6 grows as a product of binomials).
    TooManyPotentialSets { object: ObjectId, count: u64, limit: u64 },
    /// A resource budget ran out before the computation finished (see
    /// [`crate::budget::Budget`]).
    Exhausted(crate::budget::Exhausted),
    /// A global interpretation does not factor into a local one, i.e. it
    /// violates the independence constraints of Definition 4.5 (Theorem 2).
    NotFactorable,
    /// A mutation attempted to delete (or orphan) the instance root.
    CannotDeleteRoot,
    /// A mutation tried to create an object under a name that already
    /// names a member of `V`.
    AlreadyExists { object: ObjectId },
    /// A mutation ops-file failed to parse (1-based line number).
    BadOps { line: usize, msg: String },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::MissingRoot => write!(f, "instance has no root object"),
            CoreError::Unreachable(o) => {
                write!(f, "object {o:?} is not reachable from the root")
            }
            CoreError::UnknownObject(o) => {
                write!(f, "object {o:?} is referenced but not a member of the instance")
            }
            CoreError::CycleDetected(o) => {
                write!(f, "weak instance graph has a cycle through {o:?} (Definition 4.3 requires acyclicity)")
            }
            CoreError::AmbiguousChildLabel { parent, child, first, second } => write!(
                f,
                "child {child:?} of {parent:?} appears under two labels ({first:?}, {second:?}); edge labels of compatible instances would be ambiguous"
            ),
            CoreError::DuplicateChild { parent, child, label } => write!(
                f,
                "child {child:?} listed twice in lch({parent:?}, {label:?})"
            ),
            CoreError::BadCardinality { object, label, min, max, available } => write!(
                f,
                "card({object:?}, {label:?}) = [{min},{max}] is invalid (|lch| = {available})"
            ),
            CoreError::OpfNotNormalized { object, sum } => {
                write!(f, "OPF of {object:?} sums to {sum}, expected 1")
            }
            CoreError::OpfEntryOutsidePc { object } => {
                write!(f, "OPF of {object:?} assigns probability to a child set outside PC")
            }
            CoreError::BadProbability { object, p } => {
                write!(f, "probability {p} of {object:?} is outside [0,1]")
            }
            CoreError::DegenerateMass { total } => {
                write!(f, "distribution has total mass {total}; cannot renormalise")
            }
            CoreError::VpfNotNormalized { object, sum } => {
                write!(f, "VPF of {object:?} sums to {sum}, expected 1")
            }
            CoreError::VpfValueOutsideDomain { object } => {
                write!(f, "VPF of {object:?} assigns probability to a value outside dom(τ)")
            }
            CoreError::MissingOpf(o) => write!(f, "non-leaf object {o:?} has no OPF"),
            CoreError::MissingVpf(o) => write!(f, "typed leaf object {o:?} has no VPF"),
            CoreError::LeafWithChildren(o) => {
                write!(f, "object {o:?} has both a leaf type/value and children")
            }
            CoreError::ValueOutsideDomain(o) => {
                write!(f, "value of leaf {o:?} is outside its type's domain")
            }
            CoreError::ValueWithoutType(o) => {
                write!(f, "leaf {o:?} carries a value but no type")
            }
            CoreError::NotTreeShaped(o) => write!(
                f,
                "object {o:?} has multiple parents; this operation assumes tree-shaped instances (Section 6)"
            ),
            CoreError::NameNotFound(n) => write!(f, "name {n:?} not found in catalog"),
            CoreError::CatalogMismatch => {
                write!(f, "operands do not share a catalog")
            }
            CoreError::TooManyWorlds { limit } => write!(
                f,
                "instance has more than {limit} compatible worlds; exact enumeration refused"
            ),
            CoreError::TooManyPotentialSets { object, count, limit } => write!(
                f,
                "PC({object:?}) has {count} potential child sets, above the cap of {limit}; expansion refused"
            ),
            CoreError::Exhausted(e) => write!(f, "{e}"),
            CoreError::NotFactorable => write!(
                f,
                "global interpretation violates Definition 4.5 and does not factor into a local interpretation"
            ),
            CoreError::CannotDeleteRoot => {
                write!(f, "mutation would delete or orphan the instance root")
            }
            CoreError::AlreadyExists { object } => {
                write!(f, "object {object:?} already exists; insert needs a fresh name")
            }
            CoreError::BadOps { line, msg } => {
                write!(f, "ops file line {line}: {msg}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<crate::budget::Exhausted> for CoreError {
    fn from(e: crate::budget::Exhausted) -> Self {
        CoreError::Exhausted(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T, E = CoreError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = CoreError::OpfNotNormalized { object: ObjectId::from_raw(3), sum: 0.9 };
        let msg = e.to_string();
        assert!(msg.contains("OPF"));
        assert!(msg.contains("0.9"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CoreError::MissingRoot);
    }

    #[test]
    fn cycle_message_cites_definition() {
        let msg = CoreError::CycleDetected(ObjectId::from_raw(0)).to_string();
        assert!(msg.contains("4.3"));
    }
}
