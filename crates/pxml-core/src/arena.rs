//! Flat-memory arena/CSR lowering of a [`ProbInstance`] (ROADMAP item 3).
//!
//! A [`ArenaInstance`] stores one instance in contiguous arrays:
//!
//! * an **object arena** — dense `u32` indices assigned in the
//!   deterministic topological order of the weak instance graph
//!   ([`crate::weak::WeakInstance::topo_order`]), so parents precede
//!   children and a bottom-up pass is a reverse index sweep;
//! * **CSR adjacency** for `lch` — `child_offsets[x]..child_offsets[x+1]`
//!   delimits object `x`'s packed child/label rows, copied verbatim from
//!   its [`crate::childset::ChildUniverse`] so CSR row offsets *are*
//!   universe positions (the coordinates every OPF is expressed in);
//! * **OPF slabs** — explicit mask tables flatten into parallel
//!   `(u64 mask, f64 prob)` arrays, independent OPFs into one packed
//!   `f64` array, both addressed by per-object `(start, end)` slots, so
//!   the §6.1 survival evaluation runs over contiguous slices.
//!
//! The lowering is **bit-faithful**: survival and marginal arithmetic
//! replicate [`crate::opf::Opf`] operation-for-operation (same entry
//! order, same skip/early-exit conditions, same clamping), so every ε
//! computed through the arena equals the legacy value to the last bit.
//! Representations the slabs cannot express ([`Opf::LabelProduct`],
//! sparse child sets) fall back to a cloned legacy [`Opf`] — trivially
//! bit-identical, and absent from the paper's workloads.

use std::collections::HashMap;

use crate::childset::ChildSet;
use crate::error::{CoreError, Result};
use crate::ids::{Label, ObjectId};
use crate::opf::Opf;
use crate::prob_instance::ProbInstance;

/// How one object's OPF is stored in the arena slabs.
#[derive(Clone, Debug, PartialEq)]
enum OpfSlot {
    /// The object has no OPF (leaves, or phantom references).
    Missing,
    /// [`crate::opf::IndependentOpf`]: per-position presence
    /// probabilities in `indep[start..start + len]`.
    Independent {
        /// First slab index.
        start: u32,
        /// Number of per-position probabilities.
        len: u32,
    },
    /// Explicit mask table: entries `(table_masks[i], table_probs[i])`
    /// for `i ∈ start..end`, in the legacy table's insertion order.
    Table {
        /// First slab index.
        start: u32,
        /// One past the last slab index.
        end: u32,
    },
    /// Any other representation, evaluated through a cloned legacy
    /// [`Opf`] (bit-identical by construction).
    Fallback(u32),
}

/// A [`ProbInstance`] lowered to flat arrays (see the module docs).
///
/// Arena indices are dense `u32`s in `0..len()`. Indices below
/// [`ArenaInstance::member_count`] are the instance's members in
/// deterministic topological order; any remaining indices are
/// *phantoms* — objects referenced from some child universe (or the
/// root, on degenerate unchecked instances) without being members
/// themselves. Phantoms have empty CSR rows and no OPF, which makes
/// every index lookup total even on hostile inputs.
#[derive(Clone, Debug)]
pub struct ArenaInstance {
    /// Arena index → object id (the index assignment order).
    order: Vec<ObjectId>,
    /// Object id → arena index (total over `order`).
    index: HashMap<ObjectId, u32>,
    /// Number of real members; `order[members..]` are phantoms.
    members: u32,
    /// Arena index of the instance root.
    root: u32,
    /// CSR row offsets, length `order.len() + 1`, monotone.
    child_offsets: Vec<u32>,
    /// Packed child arena indices (row `x` = universe of `order[x]`).
    children: Vec<u32>,
    /// Packed edge labels, parallel to `children`.
    child_labels: Vec<Label>,
    /// Whether the entry is an edge of the weak instance graph
    /// (`card(o, l).max ≥ 1`), parallel to `children`.
    child_weak: Vec<bool>,
    /// True when no object appears as a child more than once and the
    /// root is nobody's child — the flat pipeline then skips dedup and
    /// the (unfireable) §6 tree-shape checks.
    forest: bool,
    /// Per-object OPF slot, length `order.len()`.
    slots: Vec<OpfSlot>,
    /// Slab of independent-OPF presence probabilities.
    indep: Vec<f64>,
    /// Slab of explicit-table child-set masks.
    table_masks: Vec<u64>,
    /// Slab of explicit-table probabilities, parallel to `table_masks`.
    table_probs: Vec<f64>,
    /// Cloned legacy OPFs for representations the slabs cannot express.
    fallback: Vec<Opf>,
}

impl ArenaInstance {
    /// Lowers `pi`, rejecting universes with duplicate or ambiguous
    /// `(child, label)` rows with a typed error — the checks an
    /// unchecked instance may have skipped and that the CSR layout
    /// relies on for unambiguous position arithmetic.
    pub fn lower(pi: &ProbInstance) -> Result<ArenaInstance> {
        let a = Self::lower_unchecked(pi);
        for idx in 0..a.members as usize {
            let o = a.order[idx];
            let Some(node) = pi.weak().node(o) else { continue };
            let mut seen: HashMap<ObjectId, Label> = HashMap::new();
            for (_, c, l) in node.universe().iter() {
                match seen.get(&c) {
                    None => {
                        seen.insert(c, l);
                    }
                    Some(&first) if first == l => {
                        return Err(CoreError::DuplicateChild { parent: o, child: c, label: l });
                    }
                    Some(&first) => {
                        return Err(CoreError::AmbiguousChildLabel {
                            parent: o,
                            child: c,
                            first,
                            second: l,
                        });
                    }
                }
            }
        }
        Ok(a)
    }

    /// Lowers `pi` without validation. Never fails: members missed by
    /// the topological sort (cyclic or unreachable unchecked instances)
    /// are appended in ascending id order, and dangling references
    /// become phantom indices.
    pub fn lower_unchecked(pi: &ProbInstance) -> ArenaInstance {
        let weak = pi.weak();
        let mut order = weak.topo_order().unwrap_or_default();
        let mut index: HashMap<ObjectId, u32> = HashMap::with_capacity(order.len() * 2 + 8);
        for (i, &o) in order.iter().enumerate() {
            index.insert(o, i as u32);
        }
        let mut rest: Vec<ObjectId> = weak.objects().filter(|o| !index.contains_key(o)).collect();
        rest.sort_unstable();
        for o in rest {
            index.insert(o, order.len() as u32);
            order.push(o);
        }
        let members = order.len() as u32;

        // Phantoms: universe children (and, defensively, the root) that
        // are not members, in ascending id order.
        let mut phantoms: Vec<ObjectId> = Vec::new();
        for &o in &order {
            if let Some(node) = weak.node(o) {
                for (_, c, _) in node.universe().iter() {
                    if !index.contains_key(&c) {
                        phantoms.push(c);
                    }
                }
            }
        }
        if !index.contains_key(&pi.root()) {
            phantoms.push(pi.root());
        }
        phantoms.sort_unstable();
        phantoms.dedup();
        for o in phantoms {
            index.insert(o, order.len() as u32);
            order.push(o);
        }

        let total = order.len();
        let mut child_offsets = Vec::with_capacity(total + 1);
        let mut children = Vec::new();
        let mut child_labels = Vec::new();
        let mut child_weak = Vec::new();
        let mut slots = Vec::with_capacity(total);
        let mut indep = Vec::new();
        let mut table_masks = Vec::new();
        let mut table_probs = Vec::new();
        let mut fallback = Vec::new();

        for (i, &o) in order.iter().enumerate() {
            child_offsets.push(children.len() as u32);
            let node = if i < members as usize { weak.node(o) } else { None };
            let Some(node) = node else {
                slots.push(OpfSlot::Missing);
                continue;
            };
            // Per-label weak participation, cached per node.
            let mut weak_by_label: Vec<(Label, bool)> = Vec::new();
            for (_, c, l) in node.universe().iter() {
                children.push(index[&c]);
                child_labels.push(l);
                let w = match weak_by_label.iter().find(|&&(wl, _)| wl == l) {
                    Some(&(_, w)) => w,
                    None => {
                        let w = node.card(l).max >= 1;
                        weak_by_label.push((l, w));
                        w
                    }
                };
                child_weak.push(w);
            }
            slots.push(lower_opf(
                pi.opf(o),
                node.universe().fits_mask(),
                &mut indep,
                &mut table_masks,
                &mut table_probs,
                &mut fallback,
            ));
        }
        child_offsets.push(children.len() as u32);
        let root = index[&pi.root()];

        // Forest detection: when no object appears as a child more than
        // once (and the root is nobody's child), the flat query pipeline
        // can skip dedup and the §6 tree-shape checks — they cannot fire.
        let forest = {
            let mut seen = vec![false; total];
            let mut forest = true;
            for &c in &children {
                if seen[c as usize] || c == root {
                    forest = false;
                    break;
                }
                seen[c as usize] = true;
            }
            forest
        };

        let a = ArenaInstance {
            order,
            index,
            members,
            root,
            child_offsets,
            children,
            child_labels,
            child_weak,
            forest,
            slots,
            indep,
            table_masks,
            table_probs,
            fallback,
        };
        debug_assert_eq!(a.debug_validate(), Ok(()));
        a
    }

    /// Total number of arena indices (members plus phantoms).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when the arena holds no objects at all.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Number of real members (phantom indices start here).
    pub fn member_count(&self) -> u32 {
        self.members
    }

    /// The arena index of the instance root.
    pub fn root_index(&self) -> u32 {
        self.root
    }

    /// Arena index → object id. Panics on an out-of-range index.
    pub fn object_at(&self, x: u32) -> ObjectId {
        self.order[x as usize]
    }

    /// Object id → arena index, if the object appears anywhere in the
    /// instance (as member or phantom reference).
    pub fn index_of(&self, o: ObjectId) -> Option<u32> {
        self.index.get(&o).copied()
    }

    /// The index assignment order (members first, in topological order).
    pub fn order(&self) -> &[ObjectId] {
        &self.order
    }

    /// The CSR row of `x`: offsets into the packed child arrays. The
    /// row offset of an entry equals its universe position.
    pub fn child_range(&self, x: u32) -> (u32, u32) {
        (self.child_offsets[x as usize], self.child_offsets[x as usize + 1])
    }

    /// The child arena index of packed entry `i`.
    pub fn child(&self, i: u32) -> u32 {
        self.children[i as usize]
    }

    /// The edge label of packed entry `i`.
    pub fn child_label(&self, i: u32) -> Label {
        self.child_labels[i as usize]
    }

    /// True when packed entry `i` is an edge of the weak instance graph
    /// (its label's cardinality admits at least one child).
    pub fn child_is_weak(&self, i: u32) -> bool {
        self.child_weak[i as usize]
    }

    /// True when `x` carries an OPF.
    pub fn has_opf(&self, x: u32) -> bool {
        !matches!(self.slots[x as usize], OpfSlot::Missing)
    }

    /// Stored OPF parameter count (the legacy `Opf::stored_len`).
    pub fn stored_len(&self, x: u32) -> u64 {
        match &self.slots[x as usize] {
            OpfSlot::Missing => 0,
            OpfSlot::Independent { len, .. } => u64::from(*len),
            OpfSlot::Table { start, end } => u64::from(end - start),
            OpfSlot::Fallback(f) => self.fallback[*f as usize].stored_len() as u64,
        }
    }

    /// The §6.2 survival probability of `x` over `kept` = `(universe
    /// position, child ε)` pairs, or `None` when `x` has no OPF.
    /// Bit-identical to [`Opf::survival_probability`].
    pub fn survival_probability(&self, x: u32, kept: &[(u32, f64)]) -> Option<f64> {
        match &self.slots[x as usize] {
            OpfSlot::Missing => None,
            OpfSlot::Table { start, end } => {
                let masks = &self.table_masks[*start as usize..*end as usize];
                let probs = &self.table_probs[*start as usize..*end as usize];
                let mut none = 0.0;
                for (&m, &p) in masks.iter().zip(probs) {
                    if p <= 0.0 {
                        continue;
                    }
                    let mut dead = 1.0;
                    for &(pos, e) in kept {
                        if (m >> pos) & 1 == 1 {
                            dead *= 1.0 - e;
                            if dead == 0.0 {
                                break;
                            }
                        }
                    }
                    none += p * dead;
                }
                Some((1.0 - none).clamp(0.0, 1.0))
            }
            OpfSlot::Independent { start, len } => {
                let probs = &self.indep[*start as usize..(*start + *len) as usize];
                let mut none = 1.0;
                for &(pos, e) in kept {
                    let pj = probs.get(pos as usize).copied().unwrap_or(0.0);
                    none *= 1.0 - pj * e;
                }
                Some((1.0 - none).clamp(0.0, 1.0))
            }
            OpfSlot::Fallback(f) => Some(self.fallback[*f as usize].survival_probability(kept)),
        }
    }

    /// `P(child at universe position pos present)`, or `None` when `x`
    /// has no OPF. Bit-identical to [`Opf::marginal_present`].
    pub fn marginal_present(&self, x: u32, pos: u32) -> Option<f64> {
        match &self.slots[x as usize] {
            OpfSlot::Missing => None,
            OpfSlot::Table { start, end } => {
                let masks = &self.table_masks[*start as usize..*end as usize];
                let probs = &self.table_probs[*start as usize..*end as usize];
                let mut sum = 0.0;
                for (&m, &p) in masks.iter().zip(probs) {
                    if (m >> pos) & 1 == 1 {
                        sum += p;
                    }
                }
                Some(sum)
            }
            OpfSlot::Independent { start, len } => {
                let probs = &self.indep[*start as usize..(*start + *len) as usize];
                Some(probs.get(pos as usize).copied().unwrap_or(0.0))
            }
            OpfSlot::Fallback(f) => Some(self.fallback[*f as usize].marginal_present(pos)),
        }
    }

    /// The per-depth reach sets of a root-anchored label path over the
    /// weak edges, as sorted arena indices (the flat counterpart of
    /// `layers_weak`; membership per depth is identical).
    pub fn layers_flat(&self, labels: &[Label]) -> Vec<Vec<u32>> {
        // On forests no child can be reached twice, so dedup is free;
        // otherwise a stamp per object replaces per-layer sort+dedup
        // hashing (an index is pushed at most once per depth). Either
        // way the sort is skipped when the push order is already
        // ascending — the common case, because parents are visited in
        // ascending order and CSR rows follow the topological index
        // order on trees.
        let mut stamp =
            if self.forest { Vec::new() } else { vec![u32::MAX; self.order.len()] };
        let mut layers = Vec::with_capacity(labels.len() + 1);
        layers.push(vec![self.root]);
        for (d, &label) in labels.iter().enumerate() {
            let prev = layers.last().expect("at least the root layer");
            let mut next: Vec<u32> = Vec::new();
            for &x in prev {
                let (s, e) = self.child_range(x);
                for i in s..e {
                    let c = self.children[i as usize];
                    if self.child_weak[i as usize] && self.child_labels[i as usize] == label {
                        if !self.forest {
                            if stamp[c as usize] == d as u32 {
                                continue;
                            }
                            stamp[c as usize] = d as u32;
                        }
                        next.push(c);
                    }
                }
            }
            if !next.is_sorted() {
                next.sort_unstable();
            }
            layers.push(next);
        }
        layers
    }

    /// The kept region for `targets` with the Section 6 tree-shape
    /// checks (unique role, unique kept parent), mirroring the legacy
    /// kept-region construction over arena indices. Layers must come
    /// from [`ArenaInstance::layers_flat`] for the same labels.
    pub fn kept_flat(
        &self,
        labels: &[Label],
        layers: &[Vec<u32>],
        targets: &[u32],
    ) -> Result<Vec<Vec<u32>>> {
        let n = labels.len();
        let mut kept: Vec<Vec<u32>> = vec![Vec::new(); n + 1];
        let mut t: Vec<u32> = targets.to_vec();
        t.sort_unstable();
        t.dedup();
        kept[n] = t;
        // Forest fast path: every object has at most one parent, so the
        // §6 tree-shape violations (duplicate role, duplicate kept
        // parent) cannot occur — the backward sweep filters each sorted
        // layer against the sorted layer below and nothing else.
        if self.forest {
            for d in (0..n).rev() {
                let (head, tail) = kept.split_at_mut(d + 1);
                let next = &tail[0];
                head[d] = layers[d]
                    .iter()
                    .copied()
                    .filter(|&x| {
                        let (s, e) = self.child_range(x);
                        (s..e).any(|i| {
                            self.child_weak[i as usize]
                                && self.child_labels[i as usize] == labels[d]
                                && next.binary_search(&self.children[i as usize]).is_ok()
                        })
                    })
                    .collect();
            }
            return Ok(kept);
        }
        let total = self.order.len();
        // General (DAG) path: one dense depth mark per object replaces
        // both the per-layer membership binary searches and the role
        // hash map — an object's mark is the kept depth it was admitted
        // at (`u32::MAX` = not kept), so membership tests are O(1) loads
        // and a second admission at a different depth is exactly the
        // unique-role violation.
        let mut depth_mark = vec![u32::MAX; total];
        for &x in &kept[n] {
            depth_mark[x as usize] = n as u32;
        }
        for d in (0..n).rev() {
            let below = d as u32 + 1;
            let mut layer: Vec<u32> = Vec::new();
            // `layers[d]` is sorted, so the filtered layer stays sorted.
            for &x in &layers[d] {
                let (s, e) = self.child_range(x);
                let keeps = (s..e).any(|i| {
                    self.child_weak[i as usize]
                        && self.child_labels[i as usize] == labels[d]
                        && depth_mark[self.children[i as usize] as usize] == below
                });
                if keeps {
                    if depth_mark[x as usize] != u32::MAX {
                        return Err(CoreError::NotTreeShaped(self.order[x as usize]));
                    }
                    depth_mark[x as usize] = d as u32;
                    layer.push(x);
                }
            }
            kept[d] = layer;
        }
        // Tree-shape: unique kept parent (over the *unfiltered*
        // label-matched entries, as in the legacy check), via stamped
        // dense arrays instead of a per-depth hash map.
        let mut parent_stamp = vec![u32::MAX; total];
        let mut parent_val = vec![0u32; total];
        for d in 0..n {
            for &x in &kept[d] {
                let (s, e) = self.child_range(x);
                for i in s..e {
                    if self.child_labels[i as usize] == labels[d] {
                        let c = self.children[i as usize] as usize;
                        if depth_mark[c] == d as u32 + 1 {
                            if parent_stamp[c] == d as u32 && parent_val[c] != x {
                                return Err(CoreError::NotTreeShaped(self.order[c]));
                            }
                            parent_stamp[c] = d as u32;
                            parent_val[c] = x;
                        }
                    }
                }
            }
        }
        Ok(kept)
    }

    /// Bottom-up §6.1 ε marginalisation over a verified kept region:
    /// one reverse sweep filling a dense `ε` array, tight loops over the
    /// CSR rows and OPF slabs. Returns the root ε — bit-identical to
    /// the legacy top-down recursion, because each node's kept children
    /// are gathered in the same (universe) order and the survival
    /// arithmetic replicates [`Opf::survival_probability`] op-for-op.
    pub fn eps_flat(&self, labels: &[Label], kept: &[Vec<u32>]) -> Result<f64> {
        let n = labels.len();
        if kept[0].binary_search(&self.root).is_err() {
            return Ok(0.0);
        }
        // ε lives in per-layer vectors aligned to the sorted kept
        // layers (membership and lookup are one binary search into the
        // cache-resident layer below), so the sweep allocates O(kept),
        // not O(arena). A valid kept region has disjoint layers, which
        // makes this membership test equivalent to a depth check.
        let mut below_eps: Vec<f64> = vec![1.0; kept[n].len()];
        let mut kept_children: Vec<(u32, f64)> = Vec::new();
        for d in (0..n).rev() {
            let want = labels[d];
            let below = &kept[d + 1];
            let mut layer_eps: Vec<f64> = Vec::with_capacity(kept[d].len());
            for &x in &kept[d] {
                let (s, e) = self.child_range(x);
                kept_children.clear();
                for i in s..e {
                    if self.child_labels[i as usize] == want {
                        if let Ok(p) = below.binary_search(&self.children[i as usize]) {
                            kept_children.push((i - s, below_eps[p]));
                        }
                    }
                }
                let Some(v) = self.survival_probability(x, &kept_children) else {
                    return Err(CoreError::UnknownObject(self.order[x as usize]));
                };
                if !v.is_finite() {
                    return Err(CoreError::DegenerateMass { total: v });
                }
                layer_eps.push(v);
            }
            below_eps = layer_eps;
        }
        let r = kept[0].binary_search(&self.root).expect("root membership checked above");
        Ok(below_eps[r])
    }

    /// `P(∃ o: o ∈ p)` for a root-anchored label path, entirely over
    /// the flat layout (the cold-marginalisation fast path).
    pub fn exists_flat(&self, labels: &[Label]) -> Result<f64> {
        let layers = self.layers_flat(labels);
        let located = layers.last().cloned().unwrap_or_default();
        if located.is_empty() {
            return Ok(0.0);
        }
        let kept = self.kept_flat(labels, &layers, &located)?;
        self.eps_flat(labels, &kept)
    }

    /// `P(target ∈ p)` for a root-anchored label path, entirely over
    /// the flat layout.
    pub fn point_flat(&self, labels: &[Label], target: ObjectId) -> Result<f64> {
        let Some(t) = self.index_of(target) else { return Ok(0.0) };
        let layers = self.layers_flat(labels);
        let located = layers.last().cloned().unwrap_or_default();
        if located.binary_search(&t).is_err() {
            return Ok(0.0);
        }
        let kept = self.kept_flat(labels, &layers, &[t])?;
        self.eps_flat(labels, &kept)
    }

    /// Layout-invariant check (debug-asserted after every lowering and
    /// exercised by the fuzz harness): CSR offsets monotone and closed,
    /// child arrays in-bounds and mutually parallel, OPF slot ranges
    /// in-bounds, and the id↔index maps mutually inverse.
    pub fn debug_validate(&self) -> std::result::Result<(), String> {
        let total = self.order.len();
        if self.child_offsets.len() != total + 1 {
            return Err(format!(
                "offsets length {} != objects + 1 ({})",
                self.child_offsets.len(),
                total + 1
            ));
        }
        if self.members as usize > total {
            return Err(format!("member count {} exceeds arena size {total}", self.members));
        }
        if self.root as usize >= total && total > 0 {
            return Err(format!("root index {} out of bounds", self.root));
        }
        for w in self.child_offsets.windows(2) {
            if w[0] > w[1] {
                return Err(format!("offsets not monotone at {w:?}"));
            }
        }
        let packed = self.children.len();
        if self.child_offsets.last().copied().unwrap_or(0) as usize != packed {
            return Err("offsets do not close over the packed child array".into());
        }
        if self.child_labels.len() != packed || self.child_weak.len() != packed {
            return Err("child arrays are not parallel".into());
        }
        for &c in &self.children {
            if c as usize >= total {
                return Err(format!("child index {c} out of bounds"));
            }
        }
        if self.slots.len() != total {
            return Err("one OPF slot per object required".into());
        }
        if self.table_masks.len() != self.table_probs.len() {
            return Err("table slabs are not parallel".into());
        }
        for (i, slot) in self.slots.iter().enumerate() {
            match slot {
                OpfSlot::Missing => {}
                OpfSlot::Independent { start, len } => {
                    if (*start as usize) + (*len as usize) > self.indep.len() {
                        return Err(format!("independent slab range of object {i} out of bounds"));
                    }
                }
                OpfSlot::Table { start, end } => {
                    if start > end || *end as usize > self.table_masks.len() {
                        return Err(format!("table slab range of object {i} out of bounds"));
                    }
                }
                OpfSlot::Fallback(f) => {
                    if *f as usize >= self.fallback.len() {
                        return Err(format!("fallback index of object {i} out of bounds"));
                    }
                }
            }
        }
        if self.index.len() != total {
            return Err("id→index map size mismatch".into());
        }
        for (i, &o) in self.order.iter().enumerate() {
            if self.index.get(&o).copied() != Some(i as u32) {
                return Err(format!("index map disagrees with order at {i}"));
            }
        }
        Ok(())
    }
}

/// Lowers one OPF into the slabs, falling back to a clone when the
/// representation cannot be expressed as masks over a ≤64 universe.
fn lower_opf(
    opf: Option<&Opf>,
    fits_mask: bool,
    indep: &mut Vec<f64>,
    table_masks: &mut Vec<u64>,
    table_probs: &mut Vec<f64>,
    fallback: &mut Vec<Opf>,
) -> OpfSlot {
    match opf {
        None => OpfSlot::Missing,
        Some(Opf::Independent(i)) => {
            let start = indep.len() as u32;
            indep.extend_from_slice(i.probs());
            OpfSlot::Independent { start, len: i.probs().len() as u32 }
        }
        Some(Opf::Table(t))
            if fits_mask && t.iter().all(|(s, _)| matches!(s, ChildSet::Mask(_))) =>
        {
            let start = table_masks.len() as u32;
            for (s, p) in t.iter() {
                if let ChildSet::Mask(m) = s {
                    table_masks.push(*m);
                    table_probs.push(p);
                }
            }
            OpfSlot::Table { start, end: table_masks.len() as u32 }
        }
        Some(other) => {
            fallback.push(other.clone());
            OpfSlot::Fallback((fallback.len() - 1) as u32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{chain, fig2_instance};

    #[test]
    fn lowering_assigns_topological_indices() {
        let pi = chain(3, 0.5);
        let a = ArenaInstance::lower(&pi).expect("valid instance lowers");
        assert_eq!(a.len(), 4);
        assert_eq!(a.member_count(), 4);
        assert_eq!(a.object_at(a.root_index()), pi.root());
        // Parents precede children in the index order.
        for x in 0..a.len() as u32 {
            let (s, e) = a.child_range(x);
            for i in s..e {
                assert!(a.child(i) > x, "topological order violated");
            }
        }
        assert_eq!(a.debug_validate(), Ok(()));
    }

    #[test]
    fn chain_exists_flat_is_link_product() {
        for (n, q) in [(2usize, 0.3f64), (3, 0.5), (4, 0.9)] {
            let pi = chain(n, q);
            let a = ArenaInstance::lower(&pi).unwrap();
            let labels = vec![pi.lid("next").unwrap(); n];
            let got = a.exists_flat(&labels).unwrap();
            assert!((got - q.powi(n as i32)).abs() < 1e-12, "n={n} q={q}: {got}");
        }
    }

    #[test]
    fn fig2_point_flat_matches_paper_value() {
        // T2 through R.book.title is 0.8 (see the legacy point tests).
        let pi = fig2_instance();
        let a = ArenaInstance::lower(&pi).unwrap();
        let labels = vec![pi.lid("book").unwrap(), pi.lid("title").unwrap()];
        let t2 = pi.oid("T2").unwrap();
        let got = a.point_flat(&labels, t2).unwrap();
        assert!((got - 0.8).abs() < 1e-9, "got {got}");
    }

    #[test]
    fn fig2_shared_object_is_rejected_as_non_tree() {
        let pi = fig2_instance();
        let a = ArenaInstance::lower(&pi).unwrap();
        let labels = vec![pi.lid("book").unwrap(), pi.lid("author").unwrap()];
        let a1 = pi.oid("A1").unwrap();
        assert!(matches!(a.point_flat(&labels, a1), Err(CoreError::NotTreeShaped(_))));
    }

    #[test]
    fn point_flat_of_foreign_target_is_zero() {
        let pi = chain(2, 0.5);
        let a = ArenaInstance::lower(&pi).unwrap();
        let labels = vec![pi.lid("next").unwrap()];
        assert_eq!(a.point_flat(&labels, ObjectId::from_raw(9999)).unwrap(), 0.0);
    }

    /// An unchecked instance whose root universe is given verbatim —
    /// the shapes `ProbInstanceBuilder` refuses but hostile loaders can
    /// still hand the arena.
    fn hostile(rows: &[(&str, &str)], declare_children: bool) -> (ProbInstance, Vec<ObjectId>) {
        use std::sync::Arc;

        use crate::catalog::Catalog;
        use crate::childset::ChildUniverse;
        use crate::ids::{IdMap, ObjectKind};
        use crate::weak::{WeakInstance, WeakNode};

        let mut cat = Catalog::new();
        let r = cat.object("r");
        let mut universe = ChildUniverse::default();
        let mut ids = vec![r];
        let mut nodes: IdMap<ObjectKind, WeakNode> = IdMap::new();
        for &(child, label) in rows {
            let c = cat.object(child);
            let l = cat.label(label);
            universe.push(c, l);
            ids.push(c);
            if declare_children {
                nodes.insert(c, WeakNode::default());
            }
        }
        nodes.insert(r, WeakNode::from_parts(universe, Vec::new(), None));
        let w = WeakInstance::from_parts_unchecked(Arc::new(cat), r, nodes);
        (ProbInstance::from_parts_unchecked(w, IdMap::new(), IdMap::new()), ids)
    }

    #[test]
    fn duplicate_child_is_rejected_by_checked_lowering() {
        let (pi, _) = hostile(&[("c", "x"), ("c", "x")], true);
        assert!(matches!(
            ArenaInstance::lower(&pi),
            Err(CoreError::DuplicateChild { .. })
        ));
        // Unchecked lowering still succeeds with a valid layout.
        let a = ArenaInstance::lower_unchecked(&pi);
        assert_eq!(a.debug_validate(), Ok(()));
    }

    #[test]
    fn ambiguous_child_label_is_rejected_by_checked_lowering() {
        let (pi, _) = hostile(&[("c", "x"), ("c", "y")], true);
        assert!(matches!(
            ArenaInstance::lower(&pi),
            Err(CoreError::AmbiguousChildLabel { .. })
        ));
    }

    #[test]
    fn phantom_children_get_indices_without_nodes() {
        // `ghost` appears in the universe but not in the vertex set.
        let (pi, ids) = hostile(&[("ghost", "x")], false);
        let a = ArenaInstance::lower_unchecked(&pi);
        assert_eq!(a.len(), 2);
        assert_eq!(a.member_count(), 1);
        assert!(a.index_of(ids[1]).is_some());
        assert_eq!(a.debug_validate(), Ok(()));
    }
}
