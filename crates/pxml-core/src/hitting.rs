//! Minimal hitting sets.
//!
//! Definition 3.6 of the paper defines a potential child set of `o` as
//! `⋃H` where `H` is a *minimal* hitting set of the family
//! `{PL(o, l) | lch(o, l) ≠ ∅}` — each `PL(o, l)` being itself a set of
//! potential `l`-child sets. This module implements the generic
//! minimal-hitting-set enumeration; [`crate::potential`] uses a faster
//! per-label cross product and is property-tested against this definition.

use std::collections::HashSet;
use std::hash::Hash;

use crate::budget::Budget;
use crate::error::Result;

/// Enumerates all **minimal** hitting sets of `families`.
///
/// A hitting set `H` contains at least one element of every family; it is
/// minimal if no proper subset is also a hitting set (footnote 1 of the
/// paper). Families must be non-empty for a hitting set to exist; if any
/// family is empty the result is empty.
///
/// Elements are compared by `Eq`/`Hash`. The result contains each minimal
/// hitting set exactly once (as a sorted-by-discovery `Vec`).
pub fn minimal_hitting_sets<T>(families: &[Vec<T>]) -> Vec<Vec<T>>
where
    T: Clone + Eq + Hash + Ord,
{
    minimal_hitting_sets_budgeted(families, &Budget::unlimited())
        .expect("unlimited budget cannot exhaust")
}

/// [`minimal_hitting_sets`] charging one budget step per branch of the
/// exponential enumeration, so dense families exhaust cleanly instead of
/// running until heat death.
pub fn minimal_hitting_sets_budgeted<T>(families: &[Vec<T>], budget: &Budget) -> Result<Vec<Vec<T>>>
where
    T: Clone + Eq + Hash + Ord,
{
    if families.iter().any(Vec::is_empty) {
        return Ok(Vec::new());
    }
    let mut results: HashSet<Vec<T>> = HashSet::new();
    let mut current: Vec<T> = Vec::new();
    branch(families, 0, &mut current, &mut results, budget)?;
    let mut out: Vec<Vec<T>> = results.into_iter().filter(|h| is_minimal(h, families)).collect();
    out.sort();
    Ok(out)
}

/// Recursively extends `current` until every family is hit.
fn branch<T>(
    families: &[Vec<T>],
    from: usize,
    current: &mut Vec<T>,
    results: &mut HashSet<Vec<T>>,
    budget: &Budget,
) -> Result<()>
where
    T: Clone + Eq + Hash + Ord,
{
    budget.charge(1)?;
    // Find the first family not yet hit.
    let next = (from..families.len())
        .find(|&i| !families[i].iter().any(|e| current.contains(e)));
    match next {
        None => {
            let mut h = current.clone();
            h.sort();
            h.dedup();
            results.insert(h);
        }
        Some(i) => {
            for e in &families[i] {
                current.push(e.clone());
                branch(families, i + 1, current, results, budget)?;
                current.pop();
            }
        }
    }
    Ok(())
}

/// True if `h` is a hitting set of `families` with no redundant element.
fn is_minimal<T>(h: &[T], families: &[Vec<T>]) -> bool
where
    T: Clone + Eq + Hash,
{
    let hits = |set: &[&T], fam: &Vec<T>| fam.iter().any(|e| set.contains(&e));
    let all: Vec<&T> = h.iter().collect();
    if !families.iter().all(|f| hits(&all, f)) {
        return false;
    }
    for skip in 0..h.len() {
        let reduced: Vec<&T> = h.iter().enumerate().filter(|&(i, _)| i != skip).map(|(_, e)| e).collect();
        if families.iter().all(|f| hits(&reduced, f)) {
            return false; // a proper subset still hits everything
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_family_yields_singletons() {
        let fams = vec![vec![1, 2, 3]];
        let hs = minimal_hitting_sets(&fams);
        assert_eq!(hs, vec![vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn disjoint_families_yield_cross_product() {
        let fams = vec![vec![1, 2], vec![3, 4]];
        let hs = minimal_hitting_sets(&fams);
        assert_eq!(hs, vec![vec![1, 3], vec![1, 4], vec![2, 3], vec![2, 4]]);
    }

    #[test]
    fn shared_element_hits_both_families_alone() {
        let fams = vec![vec![1, 2], vec![2, 3]];
        let hs = minimal_hitting_sets(&fams);
        // {2} hits both; {1,3} is the other minimal one. {1,2} is NOT
        // minimal because {2} ⊂ {1,2} already hits everything.
        assert!(hs.contains(&vec![2]));
        assert!(hs.contains(&vec![1, 3]));
        assert!(!hs.contains(&vec![1, 2]));
        assert_eq!(hs.len(), 2);
    }

    #[test]
    fn empty_family_means_no_hitting_set() {
        let fams: Vec<Vec<i32>> = vec![vec![1], vec![]];
        assert!(minimal_hitting_sets(&fams).is_empty());
    }

    #[test]
    fn no_families_has_the_empty_hitting_set() {
        let fams: Vec<Vec<i32>> = vec![];
        assert_eq!(minimal_hitting_sets(&fams), vec![Vec::<i32>::new()]);
    }

    #[test]
    fn duplicate_elements_inside_family_do_not_duplicate_results() {
        let fams = vec![vec![1, 1, 2]];
        let hs = minimal_hitting_sets(&fams);
        assert_eq!(hs, vec![vec![1], vec![2]]);
    }
}
