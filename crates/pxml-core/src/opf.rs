//! Object probability functions (Definition 3.8).
//!
//! An OPF for a non-leaf object `o` is a distribution over `PC(o)`. The
//! fully general representation is an explicit table; Section 3.2 of the
//! paper notes that "in the case where there is additional structure that
//! can be exploited, we plan to allow compact representations of the
//! distributions" — this module implements two such compact forms:
//!
//! * [`IndependentOpf`] — every potential child is present independently
//!   with its own probability (the ProTDB-style special case [19]);
//! * [`LabelProductOpf`] — an independent table per label (the paper's
//!   "if the existence of author and title objects is independent, then we
//!   only need to specify a distribution over authors and a distribution
//!   over titles").

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::childset::{ChildSet, ChildUniverse};
use crate::error::{CoreError, Result, PROB_EPS};
use crate::ids::{Label, ObjectId};

/// An explicit OPF table: `PC(o) → [0, 1]`.
///
/// The hash index accelerating [`OpfTable::prob`] and [`OpfTable::add`]
/// is **not** cloned: copying an instance is a hot path of the paper's
/// experimental procedure ("the time to make a copy of the input
/// instance", §7.1), and clones are usually only iterated. The index is
/// rebuilt lazily on the first keyed operation after a clone.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct OpfTable {
    entries: Vec<(ChildSet, f64)>,
    #[serde(skip)]
    index: HashMap<ChildSet, usize>,
}

impl Clone for OpfTable {
    fn clone(&self) -> Self {
        OpfTable { entries: self.entries.clone(), index: HashMap::new() }
    }
}

impl OpfTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the lazy hash index covers all entries.
    fn index_is_fresh(&self) -> bool {
        self.index.len() == self.entries.len()
    }

    /// Builds a table from `(set, probability)` pairs. Later entries for
    /// the same set overwrite earlier ones.
    pub fn from_entries(entries: impl IntoIterator<Item = (ChildSet, f64)>) -> Self {
        let mut t = OpfTable::new();
        for (set, p) in entries {
            t.set(set, p);
        }
        t
    }

    /// Sets the probability of `set`.
    pub fn set(&mut self, set: ChildSet, p: f64) {
        if !self.index_is_fresh() {
            self.rebuild_index();
        }
        match self.index.get(&set) {
            Some(&i) => self.entries[i].1 = p,
            None => {
                self.index.insert(set.clone(), self.entries.len());
                self.entries.push((set, p));
            }
        }
    }

    /// Adds `p` to the probability of `set` (inserting it if absent) —
    /// the primitive used by marginalisation.
    pub fn add(&mut self, set: ChildSet, p: f64) {
        if !self.index_is_fresh() {
            self.rebuild_index();
        }
        match self.index.get(&set) {
            Some(&i) => self.entries[i].1 += p,
            None => {
                self.index.insert(set.clone(), self.entries.len());
                self.entries.push((set, p));
            }
        }
    }

    /// The probability of `set` (0 if absent). Falls back to a linear
    /// scan on tables whose lazy index has not been rebuilt since a clone.
    pub fn prob(&self, set: &ChildSet) -> f64 {
        if self.index_is_fresh() {
            self.index.get(set).map_or(0.0, |&i| self.entries[i].1)
        } else {
            self.entries.iter().find(|(s, _)| s == set).map_or(0.0, |&(_, p)| p)
        }
    }

    /// Number of entries (the paper's `|℘(o)|`, the quantity Figure 7's
    /// cost model is quadratic in).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(set, probability)` entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&ChildSet, f64)> {
        self.entries.iter().map(|(s, p)| (s, *p))
    }

    /// Sum of all probabilities.
    pub fn total(&self) -> f64 {
        self.entries.iter().map(|&(_, p)| p).sum()
    }

    /// Divides every probability by `total()`, dropping zero entries.
    /// Returns the pre-normalisation total (the ε of Section 6.1 when the
    /// empty set has first been zeroed).
    ///
    /// Errors with [`CoreError::DegenerateMass`] when the total is zero,
    /// negative or non-finite — previously a NaN total propagated silently
    /// through every entry and a zero total left the table unnormalised.
    /// Callers that treat a (near-)zero total as "dead" should test
    /// [`OpfTable::total`] before normalising.
    pub fn normalize(&mut self) -> Result<f64> {
        let total = self.total();
        if !total.is_finite() || total <= 0.0 {
            return Err(CoreError::DegenerateMass { total });
        }
        for (_, p) in &mut self.entries {
            *p /= total;
        }
        self.retain_positive();
        Ok(total)
    }

    /// Removes entries with probability 0 (or below).
    pub fn retain_positive(&mut self) {
        self.entries.retain(|&(_, p)| p > 0.0);
        self.rebuild_index();
    }

    /// Rebuilds the hash index; required after deserialization.
    pub fn rebuild_index(&mut self) {
        self.index =
            self.entries.iter().enumerate().map(|(i, (s, _))| (s.clone(), i)).collect();
    }

    /// `P(child at position pos ∈ c)` under this table.
    pub fn marginal_present(&self, pos: u32) -> f64 {
        self.entries.iter().filter(|(s, _)| s.contains_pos(pos)).map(|&(_, p)| p).sum()
    }

    /// Conditions the table on the child at `pos` being present (if
    /// `present`) or absent. Returns the conditioned table and the
    /// marginal probability of the conditioning event.
    pub fn condition(&self, pos: u32, present: bool) -> (OpfTable, f64) {
        let mut out = OpfTable::new();
        let mut marginal = 0.0;
        for (s, p) in self.iter() {
            if s.contains_pos(pos) == present {
                marginal += p;
                out.add(s.clone(), p);
            }
        }
        if marginal > 0.0 {
            for (_, p) in &mut out.entries {
                *p /= marginal;
            }
        }
        (out, marginal)
    }
}

impl PartialEq for OpfTable {
    fn eq(&self, other: &Self) -> bool {
        if self.entries.len() != other.entries.len() {
            return false;
        }
        self.entries
            .iter()
            .all(|(s, p)| (other.prob(s) - p).abs() <= PROB_EPS)
    }
}

/// Compact OPF: each potential child is present independently.
///
/// Valid only when `PC(o)` is the full power set of the universe, i.e. no
/// cardinality constraints bind (the setting of the paper's experiments,
/// Section 7.1, and of ProTDB).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IndependentOpf {
    /// `probs[i]` is the probability that the child at universe position
    /// `i` is present.
    probs: Vec<f64>,
}

impl IndependentOpf {
    /// Creates the OPF from per-position presence probabilities.
    pub fn new(probs: Vec<f64>) -> Self {
        IndependentOpf { probs }
    }

    /// Per-position presence probabilities.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// The probability of an exact child set.
    pub fn prob(&self, set: &ChildSet) -> f64 {
        let mut p = 1.0;
        for (i, &pi) in self.probs.iter().enumerate() {
            if set.contains_pos(i as u32) {
                p *= pi;
            } else {
                p *= 1.0 - pi;
            }
        }
        p
    }

    /// Materialises the full `2^n` table.
    pub fn to_table(&self, universe: &ChildUniverse) -> OpfTable {
        let full = ChildSet::full(universe);
        OpfTable::from_entries(full.subsets().map(|s| {
            let p = self.prob(&s);
            (s, p)
        }))
    }
}

/// Compact OPF: independent distribution per label.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LabelProductOpf {
    /// For each label: the positions carrying it, and a table over subsets
    /// of those positions.
    parts: Vec<(Label, ChildSet, OpfTable)>,
}

impl LabelProductOpf {
    /// Builds the product OPF from per-label tables. `universe` supplies
    /// the position slice of each label.
    pub fn new(universe: &ChildUniverse, parts: impl IntoIterator<Item = (Label, OpfTable)>) -> Self {
        LabelProductOpf {
            parts: parts
                .into_iter()
                .map(|(l, t)| (l, universe.members_with_label(l), t))
                .collect(),
        }
    }

    /// The per-label parts.
    pub fn parts(&self) -> &[(Label, ChildSet, OpfTable)] {
        &self.parts
    }

    /// The probability of an exact child set: the product over labels of
    /// the probability of the set's restriction to that label.
    pub fn prob(&self, set: &ChildSet) -> f64 {
        // Members outside every label slice are impossible.
        let mut covered = set.clone();
        let mut p = 1.0;
        for (_, slice, table) in &self.parts {
            let restricted = set.intersect(slice);
            covered = covered.difference(slice);
            p *= table.prob(&restricted);
        }
        if covered.is_empty() {
            p
        } else {
            0.0
        }
    }

    /// Materialises the explicit joint table (cross product of parts).
    pub fn to_table(&self) -> OpfTable {
        let mut acc: Vec<(ChildSet, f64)> = vec![];
        for (i, (_, _, table)) in self.parts.iter().enumerate() {
            if i == 0 {
                acc = table.iter().map(|(s, p)| (s.clone(), p)).collect();
            } else {
                let mut next = Vec::with_capacity(acc.len() * table.len());
                for (s0, p0) in &acc {
                    for (s1, p1) in table.iter() {
                        next.push((s0.union(s1), p0 * p1));
                    }
                }
                acc = next;
            }
        }
        if acc.is_empty() {
            // No parts: the only child set is ∅.
            let mut t = OpfTable::new();
            t.set(ChildSet::Mask(0), 1.0);
            return t;
        }
        OpfTable::from_entries(acc)
    }
}

/// An object probability function in any representation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Opf {
    /// Fully general explicit table.
    Table(OpfTable),
    /// Independent per-child presence probabilities.
    Independent(IndependentOpf),
    /// Independent distribution per label.
    LabelProduct(LabelProductOpf),
}

impl Opf {
    /// The probability of an exact child set.
    pub fn prob(&self, set: &ChildSet) -> f64 {
        match self {
            Opf::Table(t) => t.prob(set),
            Opf::Independent(i) => i.prob(set),
            Opf::LabelProduct(l) => l.prob(set),
        }
    }

    /// Materialises to an explicit table (identity for `Table`).
    pub fn to_table(&self, universe: &ChildUniverse) -> OpfTable {
        match self {
            Opf::Table(t) => t.clone(),
            Opf::Independent(i) => i.to_table(universe),
            Opf::LabelProduct(l) => l.to_table(),
        }
    }

    /// Number of stored entries/parameters (`|℘(o)|` in the paper's cost
    /// model: table entries for `Table`, materialised-equivalent count for
    /// the compact forms is deliberately *not* used — compactness is the
    /// point).
    pub fn stored_len(&self) -> usize {
        match self {
            Opf::Table(t) => t.len(),
            Opf::Independent(i) => i.probs().len(),
            Opf::LabelProduct(l) => l.parts().iter().map(|(_, _, t)| t.len()).sum(),
        }
    }

    /// Number of entries of the *materialised* distribution.
    pub fn support_len(&self, universe: &ChildUniverse) -> usize {
        match self {
            Opf::Table(t) => t.len(),
            _ => self.to_table(universe).len(),
        }
    }

    /// The survival probability of Section 6.2's ε computation:
    /// `Σ_c ℘(c) · (1 − Π_{(pos, ε) ∈ kept, pos ∈ c} (1 − ε))` — the
    /// probability that at least one of the given children is chosen
    /// *and* survives, where `kept` pairs universe positions with their
    /// subtree-survival probabilities.
    ///
    /// Compact representations are evaluated in closed form without
    /// materialising the `2^b` table — the "make use of the additional
    /// structure effectively when answering queries" promise of §3.2:
    /// for independent children, `1 − Π_j (1 − p_j·ε_j)`.
    pub fn survival_probability(&self, kept: &[(u32, f64)]) -> f64 {
        match self {
            Opf::Table(t) => {
                let mut none = 0.0;
                for (set, p) in t.iter() {
                    if p <= 0.0 {
                        continue;
                    }
                    let mut dead = 1.0;
                    for &(pos, e) in kept {
                        if set.contains_pos(pos) {
                            dead *= 1.0 - e;
                            if dead == 0.0 {
                                break;
                            }
                        }
                    }
                    none += p * dead;
                }
                (1.0 - none).clamp(0.0, 1.0)
            }
            Opf::Independent(i) => {
                let mut none = 1.0;
                for &(pos, e) in kept {
                    let pj = i.probs().get(pos as usize).copied().unwrap_or(0.0);
                    none *= 1.0 - pj * e;
                }
                (1.0 - none).clamp(0.0, 1.0)
            }
            Opf::LabelProduct(l) => {
                // Parts are independent; a child belongs to exactly one
                // part's slice.
                let mut none = 1.0;
                for (_, slice, table) in l.parts() {
                    let in_part: Vec<(u32, f64)> = kept
                        .iter()
                        .copied()
                        .filter(|&(pos, _)| slice.contains_pos(pos))
                        .collect();
                    if in_part.is_empty() {
                        continue;
                    }
                    let mut part_none = 0.0;
                    for (set, p) in table.iter() {
                        if p <= 0.0 {
                            continue;
                        }
                        let mut dead = 1.0;
                        for &(pos, e) in &in_part {
                            if set.contains_pos(pos) {
                                dead *= 1.0 - e;
                            }
                        }
                        part_none += p * dead;
                    }
                    none *= part_none;
                }
                (1.0 - none).clamp(0.0, 1.0)
            }
        }
    }

    /// `P(all children at the given positions present simultaneously)`.
    pub fn marginal_all_present(&self, positions: &[u32]) -> f64 {
        match self {
            Opf::Table(t) => t
                .iter()
                .filter(|(s, _)| positions.iter().all(|&p| s.contains_pos(p)))
                .map(|(_, p)| p)
                .sum(),
            Opf::Independent(i) => positions
                .iter()
                .map(|&p| i.probs().get(p as usize).copied().unwrap_or(0.0))
                .product(),
            Opf::LabelProduct(l) => {
                // Group the required positions by part; parts are
                // independent, so the joint is the product of per-part
                // "all present" marginals.
                let mut acc = 1.0;
                let mut covered: Vec<u32> = Vec::new();
                for (_, slice, table) in l.parts() {
                    let needed: Vec<u32> =
                        positions.iter().copied().filter(|&p| slice.contains_pos(p)).collect();
                    covered.extend(needed.iter().copied());
                    if needed.is_empty() {
                        continue;
                    }
                    acc *= table
                        .iter()
                        .filter(|(s, _)| needed.iter().all(|&p| s.contains_pos(p)))
                        .map(|(_, p)| p)
                        .sum::<f64>();
                }
                if covered.len() == positions.len() {
                    acc
                } else {
                    0.0 // some required position belongs to no part
                }
            }
        }
    }

    /// `P(child at position pos present)`.
    pub fn marginal_present(&self, pos: u32) -> f64 {
        match self {
            Opf::Table(t) => t.marginal_present(pos),
            Opf::Independent(i) => i.probs().get(pos as usize).copied().unwrap_or(0.0),
            Opf::LabelProduct(l) => {
                for (_, slice, table) in l.parts() {
                    if slice.contains_pos(pos) {
                        return table
                            .iter()
                            .filter(|(s, _)| s.contains_pos(pos))
                            .map(|(_, p)| p)
                            .sum();
                    }
                }
                0.0
            }
        }
    }

    /// Conditions on the presence/absence of the child at `pos`,
    /// preserving compact representations where possible. Returns the
    /// conditioned OPF and the marginal probability of the event.
    pub fn condition(&self, pos: u32, present: bool) -> (Opf, f64) {
        match self {
            Opf::Table(t) => {
                let (t2, m) = t.condition(pos, present);
                (Opf::Table(t2), m)
            }
            Opf::Independent(i) => {
                let mut probs = i.probs().to_vec();
                let pi = probs.get(pos as usize).copied().unwrap_or(0.0);
                let m = if present { pi } else { 1.0 - pi };
                if let Some(p) = probs.get_mut(pos as usize) {
                    *p = if present { 1.0 } else { 0.0 };
                }
                (Opf::Independent(IndependentOpf::new(probs)), m)
            }
            Opf::LabelProduct(l) => {
                let mut parts = l.parts.clone();
                let mut marginal = 1.0;
                for (_, slice, table) in &mut parts {
                    if slice.contains_pos(pos) {
                        let (t2, m) = table.condition(pos, present);
                        *table = t2;
                        marginal = m;
                        break;
                    }
                }
                (Opf::LabelProduct(LabelProductOpf { parts }), marginal)
            }
        }
    }

    /// Validates the OPF for object `o` of weak instance `w`: entries in
    /// `[0,1]`, total 1, and support contained in `PC(o)`.
    pub fn validate(&self, w: &crate::weak::WeakInstance, o: ObjectId) -> Result<()> {
        let node = w.node(o).ok_or(CoreError::UnknownObject(o))?;
        let table = self.to_table(node.universe());
        let mut sum = 0.0;
        for (set, p) in table.iter() {
            if !(0.0..=1.0 + PROB_EPS).contains(&p) {
                return Err(CoreError::BadProbability { object: o, p });
            }
            if p > 0.0 && !crate::potential::pc_contains(w, o, set) {
                return Err(CoreError::OpfEntryOutsidePc { object: o });
            }
            sum += p;
        }
        if (sum - 1.0).abs() > 1e-6 {
            return Err(CoreError::OpfNotNormalized { object: o, sum });
        }
        Ok(())
    }

    /// Rebuilds hash indexes after deserialization.
    pub fn rebuild_index(&mut self) {
        match self {
            Opf::Table(t) => t.rebuild_index(),
            Opf::Independent(_) => {}
            Opf::LabelProduct(l) => {
                for (_, _, t) in &mut l.parts {
                    t.rebuild_index();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ObjectId;

    fn universe(n: u32) -> ChildUniverse {
        let l = Label::from_raw(0);
        ChildUniverse::from_members((0..n).map(|i| (ObjectId::from_raw(i), l)))
    }

    fn set(u: &ChildUniverse, ps: &[u32]) -> ChildSet {
        ChildSet::from_positions(u, ps.iter().copied())
    }

    #[test]
    fn table_set_get_and_add() {
        let u = universe(3);
        let mut t = OpfTable::new();
        t.set(set(&u, &[0]), 0.25);
        t.add(set(&u, &[0]), 0.25);
        t.set(set(&u, &[1, 2]), 0.5);
        assert_eq!(t.prob(&set(&u, &[0])), 0.5);
        assert_eq!(t.prob(&set(&u, &[1, 2])), 0.5);
        assert_eq!(t.prob(&set(&u, &[2])), 0.0);
        assert_eq!(t.len(), 2);
        assert!((t.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cloned_table_answers_queries_and_mutations_correctly() {
        let u = universe(3);
        let mut t = OpfTable::new();
        t.set(set(&u, &[0]), 0.25);
        t.set(set(&u, &[1, 2]), 0.75);
        let mut c = t.clone(); // index dropped, rebuilt lazily
        assert_eq!(c.prob(&set(&u, &[0])), 0.25); // linear-scan path
        c.add(set(&u, &[0]), 0.25); // triggers index rebuild
        assert_eq!(c.prob(&set(&u, &[0])), 0.5);
        assert_eq!(c.len(), 2);
        c.set(set(&u, &[2]), 0.1);
        assert_eq!(c.len(), 3);
        // The original is untouched.
        assert_eq!(t.prob(&set(&u, &[0])), 0.25);
    }

    #[test]
    fn table_normalize_returns_pre_total() {
        let u = universe(2);
        let mut t = OpfTable::from_entries([(set(&u, &[0]), 0.3), (set(&u, &[1]), 0.3)]);
        let total = t.normalize().unwrap();
        assert!((total - 0.6).abs() < 1e-12);
        assert!((t.prob(&set(&u, &[0])) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn table_normalize_rejects_degenerate_totals() {
        use crate::error::CoreError;
        let u = universe(2);
        // Zero total: previously left unnormalised without any signal.
        let mut zero = OpfTable::from_entries([(set(&u, &[0]), 0.0)]);
        assert!(matches!(zero.normalize(), Err(CoreError::DegenerateMass { total }) if total == 0.0));
        // NaN total: previously divided every entry by NaN silently.
        let mut nan = OpfTable::from_entries([(set(&u, &[0]), f64::NAN), (set(&u, &[1]), 0.5)]);
        assert!(matches!(nan.normalize(), Err(CoreError::DegenerateMass { total }) if total.is_nan()));
        // Infinite total.
        let mut inf = OpfTable::from_entries([(set(&u, &[0]), f64::INFINITY)]);
        assert!(inf.normalize().is_err());
        // Negative total.
        let mut neg = OpfTable::from_entries([(set(&u, &[0]), -1.0)]);
        assert!(neg.normalize().is_err());
    }

    #[test]
    fn table_marginal_and_condition() {
        let u = universe(2);
        let t = OpfTable::from_entries([
            (set(&u, &[]), 0.1),
            (set(&u, &[0]), 0.2),
            (set(&u, &[1]), 0.3),
            (set(&u, &[0, 1]), 0.4),
        ]);
        assert!((t.marginal_present(0) - 0.6).abs() < 1e-12);
        let (cond, m) = t.condition(0, true);
        assert!((m - 0.6).abs() < 1e-12);
        assert!((cond.prob(&set(&u, &[0])) - 0.2 / 0.6).abs() < 1e-12);
        assert!((cond.total() - 1.0).abs() < 1e-12);
        let (cond_abs, m_abs) = t.condition(0, false);
        assert!((m_abs - 0.4).abs() < 1e-12);
        assert!((cond_abs.prob(&set(&u, &[1])) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn independent_opf_prob_is_product() {
        let u = universe(3);
        let i = IndependentOpf::new(vec![0.5, 0.25, 1.0]);
        assert!((i.prob(&set(&u, &[0, 2])) - 0.5 * 0.75 * 1.0).abs() < 1e-12);
        assert!((i.prob(&set(&u, &[2])) - 0.5 * 0.75).abs() < 1e-12);
        // Child 2 always present, so any set without it has probability 0.
        assert_eq!(i.prob(&set(&u, &[0])), 0.0);
    }

    #[test]
    fn independent_opf_materialises_normalised_table() {
        let u = universe(3);
        let t = IndependentOpf::new(vec![0.5, 0.25, 0.9]).to_table(&u);
        assert_eq!(t.len(), 8);
        assert!((t.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn label_product_prob_multiplies_parts() {
        let a = Label::from_raw(0);
        let t_label = Label::from_raw(1);
        let u = ChildUniverse::from_members([
            (ObjectId::from_raw(0), a),
            (ObjectId::from_raw(1), a),
            (ObjectId::from_raw(2), t_label),
        ]);
        let authors = OpfTable::from_entries([
            (set(&u, &[0]), 0.3),
            (set(&u, &[1]), 0.3),
            (set(&u, &[0, 1]), 0.4),
        ]);
        let titles = OpfTable::from_entries([(set(&u, &[]), 0.5), (set(&u, &[2]), 0.5)]);
        let lp = LabelProductOpf::new(&u, [(a, authors), (t_label, titles)]);
        assert!((lp.prob(&set(&u, &[0, 2])) - 0.3 * 0.5).abs() < 1e-12);
        assert!((lp.prob(&set(&u, &[0, 1])) - 0.4 * 0.5).abs() < 1e-12);
        let joint = lp.to_table();
        assert_eq!(joint.len(), 6);
        assert!((joint.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn opf_condition_preserves_independent_form() {
        let i = Opf::Independent(IndependentOpf::new(vec![0.5, 0.5]));
        let (cond, m) = i.condition(1, true);
        assert!((m - 0.5).abs() < 1e-12);
        assert!(matches!(cond, Opf::Independent(_)));
        assert_eq!(cond.marginal_present(1), 1.0);
    }

    #[test]
    fn opf_marginals_agree_across_representations() {
        let u = universe(3);
        let i = IndependentOpf::new(vec![0.2, 0.7, 0.5]);
        let as_table = Opf::Table(i.to_table(&u));
        let as_indep = Opf::Independent(i);
        for pos in 0..3 {
            assert!(
                (as_table.marginal_present(pos) - as_indep.marginal_present(pos)).abs() < 1e-9
            );
        }
    }

    #[test]
    fn survival_probability_agrees_across_representations() {
        let u = universe(4);
        let i = IndependentOpf::new(vec![0.3, 0.6, 0.9, 0.2]);
        let table = Opf::Table(i.to_table(&u));
        let compact = Opf::Independent(i);
        for kept in [
            vec![(0u32, 1.0f64)],
            vec![(0, 0.5), (2, 0.25)],
            vec![(1, 0.0), (3, 1.0)],
            vec![],
        ] {
            let a = table.survival_probability(&kept);
            let b = compact.survival_probability(&kept);
            assert!((a - b).abs() < 1e-12, "kept {kept:?}: {a} vs {b}");
        }
    }

    #[test]
    fn survival_probability_closed_form() {
        // Two independent children with p = 0.5 each, both kept with
        // ε = 1: survival = 1 − 0.5² = 0.75.
        let i = Opf::Independent(IndependentOpf::new(vec![0.5, 0.5]));
        let s = i.survival_probability(&[(0, 1.0), (1, 1.0)]);
        assert!((s - 0.75).abs() < 1e-12);
        // With ε = 0 nothing survives.
        assert_eq!(i.survival_probability(&[(0, 0.0), (1, 0.0)]), 0.0);
    }

    #[test]
    fn survival_probability_label_product_matches_table() {
        let a = Label::from_raw(0);
        let t_label = Label::from_raw(1);
        let u = ChildUniverse::from_members([
            (ObjectId::from_raw(0), a),
            (ObjectId::from_raw(1), a),
            (ObjectId::from_raw(2), t_label),
        ]);
        let authors = OpfTable::from_entries([
            (ChildSet::from_positions(&u, [0]), 0.3),
            (ChildSet::from_positions(&u, [1]), 0.3),
            (ChildSet::from_positions(&u, [0, 1]), 0.4),
        ]);
        let titles = OpfTable::from_entries([
            (ChildSet::from_positions(&u, []), 0.5),
            (ChildSet::from_positions(&u, [2]), 0.5),
        ]);
        let lp = Opf::LabelProduct(LabelProductOpf::new(&u, [(a, authors), (t_label, titles)]));
        let table = Opf::Table(lp.to_table(&u));
        for kept in [vec![(0u32, 0.5f64), (2, 1.0)], vec![(1, 0.9)], vec![(2, 0.4)]] {
            let x = lp.survival_probability(&kept);
            let y = table.survival_probability(&kept);
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn marginal_all_present_agrees_across_representations() {
        let u = universe(3);
        let i = IndependentOpf::new(vec![0.4, 0.7, 0.2]);
        let table = Opf::Table(i.to_table(&u));
        let compact = Opf::Independent(i);
        for req in [vec![0u32], vec![0, 1], vec![0, 1, 2], vec![]] {
            let a = table.marginal_all_present(&req);
            let b = compact.marginal_all_present(&req);
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn stored_len_reflects_compactness() {
        let u = universe(8);
        let i = IndependentOpf::new(vec![0.5; 8]);
        let compact = Opf::Independent(i.clone());
        let table = Opf::Table(i.to_table(&u));
        assert_eq!(compact.stored_len(), 8);
        assert_eq!(table.stored_len(), 256);
        assert_eq!(compact.support_len(&u), 256);
    }
}
