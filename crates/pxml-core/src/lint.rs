//! Deep coherence linter for probabilistic instances.
//!
//! [`ProbInstance::validate`] answers "is this instance coherent?" with the
//! *first* violation it finds, and the algebra's `from_parts_unchecked`
//! constructors skip even that. This module answers the operational
//! question instead: given an instance of unknown provenance — a corrupted
//! file, the output of a buggy operator pipeline, a hand-written fixture —
//! report **every** way in which it fails the coherence conditions of
//! Definitions 3.4–3.11, without panicking on arbitrarily malformed input.
//!
//! The linter is the backend of the CLI's `pxml check` subcommand. It
//! never mutates the instance and never trusts it: child-set positions are
//! bounds-checked before any universe lookup, type ids are resolved with
//! fallible accessors, and cycle detection tolerates edges to unknown
//! objects (all places where the validating code path is entitled to
//! `panic!` because construction already screened its input).
//!
//! Beyond the hard coherence conditions the linter reports two classes of
//! *soft* findings (severity [`Severity::Warning`]):
//!
//! * probability mass below [`NEAR_ZERO_MASS`], which the ε-normalisation
//!   of Section 6.1 silently discards when an operator renormalises;
//! * local probability functions attached to objects that cannot use them
//!   (OPFs on leaves, VPFs on interior objects, either on objects outside
//!   `V`) — harmless to the semantics but a symptom of a broken producer.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::budget::{Budget, Exhausted};
use crate::catalog::{Catalog, DisplayObject};
use crate::childset::{ChildSet, ChildUniverse};
use crate::error::PROB_EPS;
use crate::ids::{Label, ObjectId};
use crate::opf::Opf;
use crate::prob_instance::ProbInstance;
use crate::value::Value;
use crate::weak::{Card, WeakInstance};

/// Probability mass below this threshold is effectively invisible: the
/// ε-normalisation of Section 6.1 treats subtree survival probabilities of
/// this magnitude as zero, so the mass is silently lost the first time an
/// operator renormalises. (The ancestor-projection implementation kills
/// objects whose ε drops below `1e-15`; the linter warns three orders of
/// magnitude earlier.)
pub const NEAR_ZERO_MASS: f64 = 1e-12;

/// Tolerance for distribution totals, matching `Opf::validate`.
const SUM_EPS: f64 = 1e-6;

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Legal but fragile: likely to lose information or mask a producer bug.
    Warning,
    /// Violates a coherence condition of Definitions 3.4–3.11.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// The class of coherence violation (or hazard) a finding reports.
#[derive(Clone, Debug, PartialEq)]
pub enum LintClass {
    /// The declared root is not a member of `V`.
    MissingRoot,
    /// An object in `V` is not reachable from the root in `G_W`.
    Unreachable,
    /// The weak instance graph has a cycle through this object
    /// (Definition 4.3 requires acyclicity).
    OnCycle,
    /// A potential child is not a member of `V`.
    UnknownChild {
        /// The referenced non-member.
        child: ObjectId,
    },
    /// The same child is listed twice under one label.
    DuplicateChild {
        /// The repeated child.
        child: ObjectId,
        /// The label it repeats under.
        label: Label,
    },
    /// The same child appears under two different labels.
    AmbiguousChildLabel {
        /// The doubly-labelled child.
        child: ObjectId,
        /// The first label.
        first: Label,
        /// The conflicting second label.
        second: Label,
    },
    /// `card(o, l)` is unsatisfiable: `min > max` or `min > |lch(o, l)|`.
    CardUnsatisfiable {
        /// The constrained label.
        label: Label,
        /// Declared lower bound.
        min: u32,
        /// Declared upper bound.
        max: u32,
        /// Number of potential `label`-children actually available.
        available: u32,
    },
    /// No child set in the OPF's support satisfies `card(o, l)`: the
    /// declared interval and the distribution contradict each other
    /// outright (every draw violates Definition 3.4).
    CardUnsupportedByOpf {
        /// The contradicted label.
        label: Label,
    },
    /// The OPF places positive mass on child sets whose `label`-count
    /// falls outside `card(o, l)` — support leaking out of `PC(o)`
    /// (Definitions 3.5–3.6).
    OpfMassOutsideCard {
        /// The violated label.
        label: Label,
        /// Total offending mass.
        mass: f64,
    },
    /// An OPF entry references a universe position that does not exist —
    /// the child set belongs to a different (or corrupted) universe.
    ChildSetOutsideUniverse {
        /// The first out-of-range position.
        pos: u32,
        /// The universe's length.
        universe_len: usize,
    },
    /// A label-product OPF part places mass on positions outside the
    /// slice of positions carrying its label.
    OpfEntryOutsidePart {
        /// The part's label.
        label: Label,
    },
    /// An independent OPF stores a different number of probabilities than
    /// the object has potential children.
    OpfShapeMismatch {
        /// `|universe|`.
        expected: usize,
        /// Number of stored probabilities.
        got: usize,
    },
    /// A probability is NaN or infinite.
    NonFiniteProbability {
        /// The offending value.
        p: f64,
    },
    /// A probability is negative or greater than 1.
    ProbabilityOutOfRange {
        /// The offending value.
        p: f64,
    },
    /// A distribution's total differs from 1 beyond tolerance.
    NotNormalized {
        /// The actual total.
        sum: f64,
    },
    /// Positive probability mass small enough to be silently dropped by
    /// ε-normalisation (Section 6.1); see [`NEAR_ZERO_MASS`].
    NearZeroMass {
        /// The offending value.
        p: f64,
    },
    /// A non-leaf object with potential children has no OPF.
    MissingOpf,
    /// A typed leaf has no VPF.
    MissingVpf,
    /// A VPF assigns positive mass to a value outside `dom(τ(o))`.
    VpfValueOutsideDomain {
        /// The out-of-domain value.
        value: Value,
    },
    /// A leaf's type id does not resolve in the catalog.
    UnknownType,
    /// A typed leaf also has potential children.
    LeafWithChildren,
    /// A leaf's fixed value lies outside its type's domain.
    ValueOutsideDomain,
    /// An OPF or VPF is attached to an object that cannot carry one
    /// (outside `V`, or of the wrong kind).
    OrphanInterpretation,
}

impl LintClass {
    /// Stable machine-readable code for the class (CLI output, tests).
    pub fn code(&self) -> &'static str {
        match self {
            LintClass::MissingRoot => "missing-root",
            LintClass::Unreachable => "unreachable",
            LintClass::OnCycle => "cycle",
            LintClass::UnknownChild { .. } => "unknown-child",
            LintClass::DuplicateChild { .. } => "duplicate-child",
            LintClass::AmbiguousChildLabel { .. } => "ambiguous-child-label",
            LintClass::CardUnsatisfiable { .. } => "card-unsatisfiable",
            LintClass::CardUnsupportedByOpf { .. } => "card-unsupported-by-opf",
            LintClass::OpfMassOutsideCard { .. } => "opf-mass-outside-card",
            LintClass::ChildSetOutsideUniverse { .. } => "child-set-outside-universe",
            LintClass::OpfEntryOutsidePart { .. } => "opf-entry-outside-part",
            LintClass::OpfShapeMismatch { .. } => "opf-shape-mismatch",
            LintClass::NonFiniteProbability { .. } => "non-finite-probability",
            LintClass::ProbabilityOutOfRange { .. } => "probability-out-of-range",
            LintClass::NotNormalized { .. } => "not-normalized",
            LintClass::NearZeroMass { .. } => "near-zero-mass",
            LintClass::MissingOpf => "missing-opf",
            LintClass::MissingVpf => "missing-vpf",
            LintClass::VpfValueOutsideDomain { .. } => "vpf-value-outside-domain",
            LintClass::UnknownType => "unknown-type",
            LintClass::LeafWithChildren => "leaf-with-children",
            LintClass::ValueOutsideDomain => "value-outside-domain",
            LintClass::OrphanInterpretation => "orphan-interpretation",
        }
    }

    /// The severity of this class.
    pub fn severity(&self) -> Severity {
        match self {
            LintClass::NearZeroMass { .. } | LintClass::OrphanInterpretation => {
                Severity::Warning
            }
            _ => Severity::Error,
        }
    }
}

/// One linter finding: a class of violation anchored at an object.
#[derive(Clone, Debug, PartialEq)]
pub struct LintFinding {
    /// The object the finding is about, if it concerns a specific object.
    pub object: Option<ObjectId>,
    /// What went wrong.
    pub class: LintClass,
}

impl LintFinding {
    /// The finding's severity (delegates to the class).
    pub fn severity(&self) -> Severity {
        self.class.severity()
    }

    /// Renders the finding with catalog names, in the style
    /// `error[card-unsatisfiable] R: card(R, book) = [5,5] ...`.
    pub fn render(&self, cat: &Catalog) -> String {
        let mut out = format!("{}[{}]", self.severity(), self.class.code());
        if let Some(o) = self.object {
            out.push_str(&format!(" {}", DisplayObject(cat, o)));
        }
        out.push_str(": ");
        out.push_str(&self.describe(cat));
        out
    }

    fn describe(&self, cat: &Catalog) -> String {
        let label = |l: &Label| cat.labels().try_resolve(*l).unwrap_or("<unknown label>");
        match &self.class {
            LintClass::MissingRoot => "declared root is not a member of V".into(),
            LintClass::Unreachable => {
                "not reachable from the root in the weak instance graph".into()
            }
            LintClass::OnCycle => {
                "lies on a cycle of the weak instance graph (Definition 4.3)".into()
            }
            LintClass::UnknownChild { child } => {
                format!("potential child {} is not a member of V", DisplayObject(cat, *child))
            }
            LintClass::DuplicateChild { child, label: l } => format!(
                "child {} listed twice in lch(o, {})",
                DisplayObject(cat, *child),
                label(l)
            ),
            LintClass::AmbiguousChildLabel { child, first, second } => format!(
                "child {} appears under two labels ({}, {})",
                DisplayObject(cat, *child),
                label(first),
                label(second)
            ),
            LintClass::CardUnsatisfiable { label: l, min, max, available } => format!(
                "card = [{min},{max}] for label {} is unsatisfiable (|lch| = {available})",
                label(l)
            ),
            LintClass::CardUnsupportedByOpf { label: l } => format!(
                "no child set in the OPF support satisfies card for label {}",
                label(l)
            ),
            LintClass::OpfMassOutsideCard { label: l, mass } => format!(
                "OPF places mass {mass:.3e} on child sets violating card for label {}",
                label(l)
            ),
            LintClass::ChildSetOutsideUniverse { pos, universe_len } => format!(
                "OPF entry references universe position {pos}, but the universe has only {universe_len} members"
            ),
            LintClass::OpfEntryOutsidePart { label: l } => format!(
                "label-product part for {} places mass outside its position slice",
                label(l)
            ),
            LintClass::OpfShapeMismatch { expected, got } => format!(
                "independent OPF stores {got} probabilities for {expected} potential children"
            ),
            LintClass::NonFiniteProbability { p } => {
                format!("probability {p} is not finite")
            }
            LintClass::ProbabilityOutOfRange { p } => {
                format!("probability {p} is outside [0, 1]")
            }
            LintClass::NotNormalized { sum } => {
                format!("distribution sums to {sum}, expected 1")
            }
            LintClass::NearZeroMass { p } => format!(
                "mass {p:.3e} is below {NEAR_ZERO_MASS:.0e} and will be lost by ε-normalisation (Section 6.1)"
            ),
            LintClass::MissingOpf => "object with potential children has no OPF".into(),
            LintClass::MissingVpf => "typed leaf has no VPF".into(),
            LintClass::VpfValueOutsideDomain { value } => {
                format!("VPF places mass on {value}, outside dom(τ)")
            }
            LintClass::UnknownType => "leaf type id does not resolve in the catalog".into(),
            LintClass::LeafWithChildren => "typed leaf also has potential children".into(),
            LintClass::ValueOutsideDomain => {
                "fixed leaf value lies outside its type's domain".into()
            }
            LintClass::OrphanInterpretation => {
                "local probability function attached to an object that cannot carry one".into()
            }
        }
    }
}

/// Runs every lint pass over `pi` and returns all findings, errors first.
///
/// Safe on arbitrarily incoherent instances (including those assembled via
/// `from_parts_unchecked` or loaded by the diagnostic storage paths): the
/// linter performs its own bounds and resolution checks and never panics.
pub fn lint(pi: &ProbInstance) -> Vec<LintFinding> {
    lint_governed(pi, &Budget::unlimited()).findings
}

/// Result of a budgeted lint run: the findings collected so far, plus
/// whether the budget ran out before every pass completed.
#[derive(Debug)]
pub struct LintOutcome {
    /// All findings collected before the budget (if any) was exhausted.
    pub findings: Vec<LintFinding>,
    /// `Some` when the run stopped early; `findings` is then a prefix of
    /// what an unbounded run would report, never a superset.
    pub exhausted: Option<Exhausted>,
}

/// [`lint`] under a [`Budget`]: one step is charged per object per pass
/// and per OPF/VPF table entry, so a hostile instance (e.g. a decoded
/// `.pxmlb` with an enormous OPF table) cannot pin the linter. On
/// exhaustion the findings gathered so far are returned alongside the
/// typed [`Exhausted`] — partial diagnosis beats none.
pub fn lint_governed(pi: &ProbInstance, budget: &Budget) -> LintOutcome {
    let mut out = Vec::new();
    let weak = pi.weak();
    let exhausted = lint_structure(weak, &mut out, budget)
        .and_then(|()| lint_interpretation(pi, &mut out, budget))
        .err();
    // Errors first, then warnings; stable within a severity.
    out.sort_by_key(|f| std::cmp::Reverse(f.severity()));
    LintOutcome { findings: out, exhausted }
}

/// True if `findings` contains no [`Severity::Error`] findings.
pub fn is_clean(findings: &[LintFinding]) -> bool {
    findings.iter().all(|f| f.severity() < Severity::Error)
}

fn push(out: &mut Vec<LintFinding>, object: impl Into<Option<ObjectId>>, class: LintClass) {
    out.push(LintFinding { object: object.into(), class });
}

// ---------------------------------------------------------------- structure

fn lint_structure(
    weak: &WeakInstance,
    out: &mut Vec<LintFinding>,
    budget: &Budget,
) -> Result<(), Exhausted> {
    let root_known = weak.contains(weak.root());
    if !root_known {
        push(out, None, LintClass::MissingRoot);
    }

    for o in weak.objects() {
        budget.charge(1)?;
        let Some(node) = weak.node(o) else { continue };

        // Children must exist, be unique, and carry a unique label.
        let mut seen: HashMap<ObjectId, Label> = HashMap::new();
        for (_, child, label) in node.universe().iter() {
            if !weak.contains(child) {
                push(out, o, LintClass::UnknownChild { child });
            }
            match seen.get(&child) {
                None => {
                    seen.insert(child, label);
                }
                Some(&first) if first == label => {
                    push(out, o, LintClass::DuplicateChild { child, label });
                }
                Some(&first) => {
                    push(out, o, LintClass::AmbiguousChildLabel { child, first, second: label });
                }
            }
        }

        // Declared cardinalities must be satisfiable.
        for &(label, card) in node.cards() {
            let available = node.lch_positions(label).count() as u32;
            if card.min > card.max || card.min > available {
                push(
                    out,
                    o,
                    LintClass::CardUnsatisfiable {
                        label,
                        min: card.min,
                        max: card.max,
                        available,
                    },
                );
            }
        }

        // Leaf constraints.
        if let Some(leaf) = node.leaf() {
            if !node.is_childless() {
                push(out, o, LintClass::LeafWithChildren);
            }
            match weak.catalog().types().try_resolve(leaf.ty) {
                None => push(out, o, LintClass::UnknownType),
                Some(ty) => {
                    if let Some(val) = &leaf.val {
                        if !ty.contains(val) {
                            push(out, o, LintClass::ValueOutsideDomain);
                        }
                    }
                }
            }
        }
    }

    // Reachability over the weak instance graph (edges to unknown objects
    // are ignored; they are already reported above).
    if root_known {
        let mut reached: HashSet<ObjectId> = HashSet::new();
        let mut stack = vec![weak.root()];
        while let Some(o) = stack.pop() {
            budget.charge(1)?;
            if !reached.insert(o) {
                continue;
            }
            for (_, c) in weak.weak_edges(o) {
                if weak.contains(c) {
                    stack.push(c);
                }
            }
        }
        // checkpoint-exempt: O(objects) report pass; the reachability
        // walk above already charged once per visited node.
        for o in weak.objects() {
            if !reached.contains(&o) {
                push(out, o, LintClass::Unreachable);
            }
        }
    }

    // Cycle detection: iterative three-colour DFS. `topo_order` is not
    // usable here — it assumes a validated instance and panics on edges to
    // unknown objects.
    lint_cycles(weak, out, budget)
}

fn lint_cycles(
    weak: &WeakInstance,
    out: &mut Vec<LintFinding>,
    budget: &Budget,
) -> Result<(), Exhausted> {
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    let mut colour: HashMap<ObjectId, Colour> =
        weak.objects().map(|o| (o, Colour::White)).collect();
    let mut reported: HashSet<ObjectId> = HashSet::new();

    for start in weak.objects() {
        if colour.get(&start) != Some(&Colour::White) {
            continue;
        }
        // Stack of (object, next-edge-index); edges fetched on push.
        let mut stack: Vec<(ObjectId, Vec<ObjectId>, usize)> = Vec::new();
        colour.insert(start, Colour::Grey);
        let kids = |o: ObjectId| -> Vec<ObjectId> {
            weak.weak_edges(o).into_iter().map(|(_, c)| c).filter(|c| weak.contains(*c)).collect()
        };
        stack.push((start, kids(start), 0));
        while let Some((o, edges, idx)) = stack.last_mut() {
            budget.charge(1)?;
            if *idx >= edges.len() {
                colour.insert(*o, Colour::Black);
                stack.pop();
                continue;
            }
            let c = edges[*idx];
            *idx += 1;
            match colour.get(&c).copied().unwrap_or(Colour::Black) {
                Colour::White => {
                    colour.insert(c, Colour::Grey);
                    stack.push((c, kids(c), 0));
                }
                Colour::Grey => {
                    // Back edge: `c` lies on a cycle.
                    if reported.insert(c) {
                        push(out, c, LintClass::OnCycle);
                    }
                }
                Colour::Black => {}
            }
        }
    }
    Ok(())
}

// --------------------------------------------------------- interpretation

fn lint_interpretation(
    pi: &ProbInstance,
    out: &mut Vec<LintFinding>,
    budget: &Budget,
) -> Result<(), Exhausted> {
    let weak = pi.weak();

    for o in weak.objects() {
        budget.charge(1)?;
        let Some(node) = weak.node(o) else { continue };
        if let Some(leaf) = node.leaf() {
            match pi.vpf(o) {
                None => push(out, o, LintClass::MissingVpf),
                Some(vpf) => {
                    let ty = weak.catalog().types().try_resolve(leaf.ty);
                    budget.charge(vpf.len() as u64)?;
                    lint_vpf(o, vpf, ty, out);
                }
            }
        } else if !node.is_childless() {
            match pi.opf(o) {
                None => push(out, o, LintClass::MissingOpf),
                Some(opf) => lint_opf(o, node.universe(), node.cards(), opf, out, budget)?,
            }
        }
    }

    // Interpretations that cannot belong to their object.
    for (o, _) in pi.opfs().iter() {
        budget.charge(1)?;
        let orphan = match weak.node(o) {
            None => true,
            Some(n) => n.leaf().is_some() || n.is_childless(),
        };
        if orphan {
            push(out, o, LintClass::OrphanInterpretation);
        }
    }
    for (o, _) in pi.vpfs().iter() {
        budget.charge(1)?;
        let orphan = match weak.node(o) {
            None => true,
            Some(n) => n.leaf().is_none(),
        };
        if orphan {
            push(out, o, LintClass::OrphanInterpretation);
        }
    }
    Ok(())
}

fn lint_vpf(
    o: ObjectId,
    vpf: &crate::vpf::Vpf,
    ty: Option<&crate::types::LeafType>,
    out: &mut Vec<LintFinding>,
) {
    let mut sum_ok = true;
    for (v, p) in vpf.iter() {
        if !check_prob(o, p, out) {
            sum_ok = false;
            continue;
        }
        if let Some(ty) = ty {
            if p > 0.0 && !ty.contains(v) {
                push(out, o, LintClass::VpfValueOutsideDomain { value: v.clone() });
            }
        }
    }
    if sum_ok {
        let sum = vpf.total();
        if (sum - 1.0).abs() > SUM_EPS {
            push(out, o, LintClass::NotNormalized { sum });
        }
    }
}

/// Shared per-probability checks. Returns false when the value is not
/// finite (so callers skip aggregate checks that would inherit the NaN).
fn check_prob(o: ObjectId, p: f64, out: &mut Vec<LintFinding>) -> bool {
    if !p.is_finite() {
        push(out, o, LintClass::NonFiniteProbability { p });
        return false;
    }
    if !(-PROB_EPS..=1.0 + PROB_EPS).contains(&p) {
        push(out, o, LintClass::ProbabilityOutOfRange { p });
    } else if p > 0.0 && p < NEAR_ZERO_MASS {
        push(out, o, LintClass::NearZeroMass { p });
    }
    true
}

/// Checks that `set`'s positions all fall inside the universe, reporting
/// the first offender. Must run before any `count_label`/`label_at` call:
/// those index the universe directly and panic on corrupt positions.
fn check_set_bounds(
    o: ObjectId,
    set: &ChildSet,
    universe: &ChildUniverse,
    out: &mut Vec<LintFinding>,
) -> bool {
    match set.positions().find(|&p| p as usize >= universe.len()) {
        Some(pos) => {
            push(out, o, LintClass::ChildSetOutsideUniverse { pos, universe_len: universe.len() });
            false
        }
        None => true,
    }
}

/// Per-declared-label accumulator for mass satisfying / violating the card.
struct CardMass {
    label: Label,
    card: Card,
    ok: f64,
    bad: f64,
}

impl CardMass {
    fn findings(cards: Vec<CardMass>, o: ObjectId, out: &mut Vec<LintFinding>) {
        for cm in cards {
            let total = cm.ok + cm.bad;
            if !total.is_finite() || total <= PROB_EPS {
                continue; // mass findings already reported elsewhere
            }
            if cm.ok <= PROB_EPS {
                push(out, o, LintClass::CardUnsupportedByOpf { label: cm.label });
            } else if cm.bad > SUM_EPS {
                push(out, o, LintClass::OpfMassOutsideCard { label: cm.label, mass: cm.bad });
            }
        }
    }
}

fn lint_opf(
    o: ObjectId,
    universe: &ChildUniverse,
    declared: &[(Label, Card)],
    opf: &Opf,
    out: &mut Vec<LintFinding>,
    budget: &Budget,
) -> Result<(), Exhausted> {
    // Only satisfiable declared cards take part in the support checks; the
    // unsatisfiable ones are already reported by the structure pass.
    let satisfiable: Vec<(Label, Card)> = declared
        .iter()
        .filter(|&&(l, c)| {
            let available =
                universe.iter().filter(|&(_, _, ul)| ul == l).count() as u32;
            c.min <= c.max && c.min <= available
        })
        .copied()
        .collect();

    match opf {
        Opf::Table(table) => {
            let mut cards: Vec<CardMass> = satisfiable
                .iter()
                .map(|&(label, card)| CardMass { label, card, ok: 0.0, bad: 0.0 })
                .collect();
            let mut sum_ok = true;
            for (set, p) in table.iter() {
                budget.charge(1)?;
                if !check_prob(o, p, out) {
                    sum_ok = false;
                    continue;
                }
                if !check_set_bounds(o, set, universe, out) {
                    continue;
                }
                if p <= 0.0 {
                    continue;
                }
                for cm in &mut cards {
                    let count = set.count_label(universe, cm.label);
                    if cm.card.contains(count) {
                        cm.ok += p;
                    } else {
                        cm.bad += p;
                    }
                }
            }
            if sum_ok {
                let sum = table.total();
                if (sum - 1.0).abs() > SUM_EPS {
                    push(out, o, LintClass::NotNormalized { sum });
                }
            }
            CardMass::findings(cards, o, out);
        }
        Opf::Independent(indep) => {
            if indep.probs().len() != universe.len() {
                push(
                    out,
                    o,
                    LintClass::OpfShapeMismatch {
                        expected: universe.len(),
                        got: indep.probs().len(),
                    },
                );
            }
            let mut all_finite = true;
            // checkpoint-exempt: O(universe) finiteness scan; the count
            // DP below charges per distribution entry.
            for &p in indep.probs() {
                all_finite &= check_prob(o, p, out);
            }
            if !all_finite {
                return Ok(());
            }
            // Exact per-label count distribution via dynamic programming
            // over the independent presence probabilities (a Poisson
            // binomial) — no 2^n materialisation.
            let mut cards = Vec::new();
            for &(label, card) in &satisfiable {
                let probs: Vec<f64> = universe
                    .iter()
                    .filter(|&(_, _, l)| l == label)
                    .map(|(pos, _, _)| {
                        indep.probs().get(pos as usize).copied().unwrap_or(0.0).clamp(0.0, 1.0)
                    })
                    .collect();
                let mut dist = vec![1.0f64];
                for p in probs {
                    budget.charge(dist.len() as u64)?;
                    let mut next = vec![0.0; dist.len() + 1];
                    for (k, &m) in dist.iter().enumerate() {
                        next[k] += m * (1.0 - p);
                        next[k + 1] += m * p;
                    }
                    dist = next;
                }
                let mut cm = CardMass { label, card, ok: 0.0, bad: 0.0 };
                for (k, &m) in dist.iter().enumerate() {
                    if card.contains(k as u32) {
                        cm.ok += m;
                    } else {
                        cm.bad += m;
                    }
                }
                cards.push(cm);
            }
            CardMass::findings(cards, o, out);
        }
        Opf::LabelProduct(lp) => {
            let mut cards: Vec<CardMass> = satisfiable
                .iter()
                .map(|&(label, card)| CardMass { label, card, ok: 0.0, bad: 0.0 })
                .collect();
            let mut part_labels: Vec<Label> = Vec::new();
            for (label, slice, table) in lp.parts() {
                part_labels.push(*label);
                if !check_set_bounds(o, slice, universe, out) {
                    continue;
                }
                let mut sum_ok = true;
                let mut outside_part = false;
                for (set, p) in table.iter() {
                    budget.charge(1)?;
                    if !check_prob(o, p, out) {
                        sum_ok = false;
                        continue;
                    }
                    if !check_set_bounds(o, set, universe, out) {
                        continue;
                    }
                    if p > 0.0 && !set.is_subset_of(slice) {
                        outside_part = true;
                    }
                    if p <= 0.0 {
                        continue;
                    }
                    // A label's count in the joint draw is determined by
                    // its own part alone (parts partition the universe by
                    // label when well-formed; leakage is reported below).
                    for cm in &mut cards {
                        if cm.label != *label {
                            continue;
                        }
                        let count = set.count_label(universe, cm.label);
                        if cm.card.contains(count) {
                            cm.ok += p;
                        } else {
                            cm.bad += p;
                        }
                    }
                }
                if outside_part {
                    push(out, o, LintClass::OpfEntryOutsidePart { label: *label });
                }
                if sum_ok {
                    let sum = table.total();
                    if (sum - 1.0).abs() > SUM_EPS {
                        push(out, o, LintClass::NotNormalized { sum });
                    }
                }
            }
            // Labels with no part draw zero children; a card demanding
            // more is contradicted by the whole distribution.
            cards.retain(|cm| {
                if part_labels.contains(&cm.label) {
                    true
                } else {
                    if !cm.card.contains(0) {
                        push(out, o, LintClass::CardUnsupportedByOpf { label: cm.label });
                    }
                    false
                }
            });
            CardMass::findings(cards, o, out);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::childset::ChildSet;
    use crate::error::CoreError;
    use crate::fixtures::fig2_instance;
    use crate::ids::IdMap;
    use crate::opf::{IndependentOpf, LabelProductOpf, Opf, OpfTable};
    use crate::prob_instance::ProbInstance;
    use crate::types::LeafType;
    use crate::value::Value;
    use crate::vpf::Vpf;
    use crate::weak::{Card, LeafInfo, WeakInstance, WeakNode};

    fn codes(findings: &[LintFinding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.class.code()).collect()
    }

    /// Builds a valid two-level instance and hands its parts to `mutate`
    /// for seeding a specific violation, reassembling unchecked.
    fn mutated(mutate: impl FnOnce(&mut WeakInstance, &mut IdMap<crate::ids::ObjectKind, Opf>, &mut IdMap<crate::ids::ObjectKind, Vpf>)) -> ProbInstance {
        let mut b = ProbInstance::builder();
        b.define_type(LeafType::new("t", [Value::Int(1), Value::Int(2)]));
        let r = b.object("R");
        b.lch("R", "x", &["A", "B"]);
        b.leaf("A", "t", Some(Value::Int(1)));
        b.leaf("B", "t", Some(Value::Int(2)));
        b.opf_table("R", &[(&[] as &[&str], 0.25), (&["A"], 0.25), (&["B"], 0.25), (&["A", "B"], 0.25)]);
        let pi = b.build(r).unwrap();
        let (mut weak, mut opf, mut vpf) = pi.into_parts();
        mutate(&mut weak, &mut opf, &mut vpf);
        ProbInstance::from_parts_unchecked(weak, opf, vpf)
    }

    #[test]
    fn clean_instances_produce_no_findings() {
        assert!(lint(&fig2_instance()).is_empty());
        assert!(lint(&mutated(|_, _, _| {})).is_empty());
    }

    #[test]
    fn non_finite_probability_is_flagged() {
        let pi = mutated(|w, opf, _| {
            let r = w.root();
            let u = w.node(r).unwrap().universe().clone();
            let mut t = OpfTable::new();
            t.set(ChildSet::empty(&u), f64::NAN);
            t.set(ChildSet::full(&u), 1.0);
            opf.insert(r, Opf::Table(t));
        });
        let f = lint(&pi);
        assert!(codes(&f).contains(&"non-finite-probability"), "{f:?}");
        assert!(!is_clean(&f));
    }

    #[test]
    fn negative_probability_is_flagged() {
        let pi = mutated(|w, opf, _| {
            let r = w.root();
            let u = w.node(r).unwrap().universe().clone();
            let mut t = OpfTable::new();
            t.set(ChildSet::empty(&u), -0.5);
            t.set(ChildSet::full(&u), 1.5);
            opf.insert(r, Opf::Table(t));
        });
        assert!(codes(&lint(&pi)).contains(&"probability-out-of-range"));
    }

    #[test]
    fn unnormalised_opf_is_flagged() {
        let pi = mutated(|w, opf, _| {
            let r = w.root();
            let u = w.node(r).unwrap().universe().clone();
            let mut t = OpfTable::new();
            t.set(ChildSet::full(&u), 0.5);
            opf.insert(r, Opf::Table(t));
        });
        assert!(codes(&lint(&pi)).contains(&"not-normalized"));
    }

    #[test]
    fn near_zero_mass_is_a_warning() {
        let pi = mutated(|w, opf, _| {
            let r = w.root();
            let u = w.node(r).unwrap().universe().clone();
            let mut t = OpfTable::new();
            t.set(ChildSet::empty(&u), 1e-13);
            t.set(ChildSet::full(&u), 1.0 - 1e-13);
            opf.insert(r, Opf::Table(t));
        });
        let f = lint(&pi);
        assert!(codes(&f).contains(&"near-zero-mass"));
        assert!(is_clean(&f), "near-zero mass alone must stay a warning: {f:?}");
    }

    #[test]
    fn card_unsatisfiable_is_flagged() {
        let pi = mutated(|w, _, _| {
            let r = w.root();
            let x = w.catalog().find_label("x").unwrap();
            let node = w.node(r).unwrap();
            let rebuilt = WeakNode::from_parts(
                node.universe().clone(),
                vec![(x, Card { min: 5, max: 7 })],
                None,
            );
            *w.node_mut(r).unwrap() = rebuilt;
        });
        assert!(codes(&lint(&pi)).contains(&"card-unsatisfiable"));
    }

    #[test]
    fn card_contradicted_by_opf_support_is_flagged() {
        // card(R, x) = [2,2] but the OPF puts all its mass on singletons.
        let pi = mutated(|w, opf, _| {
            let r = w.root();
            let x = w.catalog().find_label("x").unwrap();
            let node = w.node(r).unwrap();
            let u = node.universe().clone();
            let rebuilt =
                WeakNode::from_parts(u.clone(), vec![(x, Card { min: 2, max: 2 })], None);
            *w.node_mut(r).unwrap() = rebuilt;
            let mut t = OpfTable::new();
            t.set(ChildSet::from_positions(&u, [0]), 0.5);
            t.set(ChildSet::from_positions(&u, [1]), 0.5);
            opf.insert(r, Opf::Table(t));
        });
        assert!(codes(&lint(&pi)).contains(&"card-unsupported-by-opf"));
    }

    #[test]
    fn partial_mass_outside_card_is_flagged() {
        // card(R, x) = [1,2]: the ∅ entry's 0.25 violates it.
        let pi = mutated(|w, _, _| {
            let r = w.root();
            let x = w.catalog().find_label("x").unwrap();
            let node = w.node(r).unwrap();
            let rebuilt = WeakNode::from_parts(
                node.universe().clone(),
                vec![(x, Card { min: 1, max: 2 })],
                None,
            );
            *w.node_mut(r).unwrap() = rebuilt;
        });
        let f = lint(&pi);
        assert!(codes(&f).contains(&"opf-mass-outside-card"), "{f:?}");
    }

    #[test]
    fn unreachable_object_is_flagged() {
        let pi = mutated(|w, opf, _| {
            let r = w.root();
            // Empty OPF support over R's children: both leaves unreachable
            // only if edges vanish — instead orphan an extra node.
            let _ = (r, opf);
            let mut cat = (**w.catalog()).clone();
            let lost = cat.object("Lost");
            let mut nodes = w.nodes().clone();
            nodes.insert(lost, WeakNode::default());
            *w = WeakInstance::from_parts_unchecked(cat.into_shared(), w.root(), nodes);
        });
        assert!(codes(&lint(&pi)).contains(&"unreachable"));
    }

    #[test]
    fn cycle_is_flagged() {
        let mut b = crate::weak::WeakInstance::builder();
        let r = b.object("R");
        let a = b.object("A");
        let l = b.label("x");
        b.lch(r, l, &[a]);
        b.lch(a, l, &[r]);
        let w = b.build(r).unwrap();
        let mut opf = IdMap::new();
        for o in [r, a] {
            let u = w.node(o).unwrap().universe().clone();
            let mut t = OpfTable::new();
            t.set(ChildSet::full(&u), 1.0);
            opf.insert(o, Opf::Table(t));
        }
        let pi = ProbInstance::from_parts_unchecked(w, opf, IdMap::new());
        assert!(codes(&lint(&pi)).contains(&"cycle"));
    }

    #[test]
    fn corrupt_child_set_positions_do_not_panic() {
        let pi = mutated(|w, opf, _| {
            let r = w.root();
            let u = w.node(r).unwrap().universe().clone();
            let mut t = OpfTable::new();
            // Position 7 does not exist in a 2-member universe.
            t.set(ChildSet::Mask(1 << 7), 1.0);
            let _ = u;
            opf.insert(r, Opf::Table(t));
        });
        assert!(codes(&lint(&pi)).contains(&"child-set-outside-universe"));
    }

    #[test]
    fn vpf_value_outside_domain_is_flagged() {
        let pi = mutated(|w, _, vpf| {
            let a = w.catalog().find_object("A").unwrap();
            vpf.insert(a, Vpf::point(Value::Int(99)));
        });
        assert!(codes(&lint(&pi)).contains(&"vpf-value-outside-domain"));
    }

    #[test]
    fn missing_opf_and_vpf_are_flagged() {
        let pi = mutated(|w, opf, vpf| {
            let r = w.root();
            let a = w.catalog().find_object("A").unwrap();
            opf.remove(r);
            vpf.remove(a);
        });
        let c = codes(&lint(&pi));
        assert!(c.contains(&"missing-opf"));
        assert!(c.contains(&"missing-vpf"));
    }

    #[test]
    fn orphan_interpretation_is_a_warning() {
        let pi = mutated(|w, opf, _| {
            let a = w.catalog().find_object("A").unwrap();
            let mut t = OpfTable::new();
            t.set(ChildSet::Mask(0), 1.0);
            opf.insert(a, Opf::Table(t)); // OPF on a leaf
        });
        let f = lint(&pi);
        assert!(codes(&f).contains(&"orphan-interpretation"));
        assert!(is_clean(&f));
    }

    #[test]
    fn independent_opf_shape_and_card_checks() {
        let pi = mutated(|w, opf, _| {
            let r = w.root();
            let x = w.catalog().find_label("x").unwrap();
            let node = w.node(r).unwrap();
            let u = node.universe().clone();
            // card [2,2] but each child present with probability 0.5:
            // P(count = 2) = 0.25, so 0.75 of the mass violates the card.
            let rebuilt = WeakNode::from_parts(u, vec![(x, Card { min: 2, max: 2 })], None);
            *w.node_mut(r).unwrap() = rebuilt;
            opf.insert(r, Opf::Independent(IndependentOpf::new(vec![0.5, 0.5, 0.5])));
        });
        let c = codes(&lint(&pi));
        assert!(c.contains(&"opf-shape-mismatch")); // 3 probs, 2 children
        assert!(c.contains(&"opf-mass-outside-card"));
    }

    #[test]
    fn label_product_part_leak_is_flagged() {
        // Two labels; the part for `x` puts mass on `y`'s position, which
        // leaks outside its slice.
        let mut b = crate::weak::WeakInstance::builder();
        let r = b.object("R");
        let a = b.object("A");
        let c2 = b.object("C");
        let x = b.label("x");
        let y = b.label("y");
        b.lch(r, x, &[a]);
        b.lch(r, y, &[c2]);
        let w = b.build(r).unwrap();
        let u = w.node(r).unwrap().universe().clone();
        let leak = {
            let mut t = OpfTable::new();
            // Position 1 is C, which carries label y, not x.
            t.set(ChildSet::from_positions(&u, [1]), 1.0);
            t
        };
        let ok_part = {
            let mut t = OpfTable::new();
            t.set(ChildSet::from_positions(&u, [1]), 1.0);
            t
        };
        let lp = LabelProductOpf::new(&u, [(x, leak), (y, ok_part)]);
        let mut opf = IdMap::new();
        opf.insert(r, Opf::LabelProduct(lp));
        let pi = ProbInstance::from_parts_unchecked(w, opf, IdMap::new());
        let c = codes(&lint(&pi));
        assert!(c.contains(&"opf-entry-outside-part"), "{c:?}");
    }

    #[test]
    fn missing_root_is_flagged() {
        let pi = mutated(|w, _, _| {
            let mut cat = (**w.catalog()).clone();
            let ghost = cat.object("Ghost");
            let nodes = w.nodes().clone();
            *w = WeakInstance::from_parts_unchecked(cat.into_shared(), ghost, nodes);
        });
        assert!(codes(&lint(&pi)).contains(&"missing-root"));
    }

    #[test]
    fn lint_agrees_with_validate_on_valid_instances() {
        let pi = fig2_instance();
        assert!(pi.validate().is_ok());
        assert!(is_clean(&lint(&pi)));
    }

    #[test]
    fn findings_render_with_catalog_names() {
        let pi = mutated(|w, opf, _| {
            let r = w.root();
            let u = w.node(r).unwrap().universe().clone();
            let mut t = OpfTable::new();
            t.set(ChildSet::full(&u), 0.5);
            opf.insert(r, Opf::Table(t));
        });
        let f = lint(&pi);
        let rendered = f[0].render(pi.catalog());
        assert!(rendered.contains("error[not-normalized]"), "{rendered}");
        assert!(rendered.contains('R'), "{rendered}");
    }

    #[test]
    fn governed_lint_degrades_to_a_prefix_not_a_panic() {
        let pi = fig2_instance();
        // Unlimited budget reproduces `lint` exactly.
        let full = lint_governed(&pi, &Budget::unlimited());
        assert!(full.exhausted.is_none());
        assert_eq!(codes(&full.findings), codes(&lint(&pi)));
        // A one-step budget stops early but still returns cleanly, and
        // never invents findings an unbounded run would not report.
        let tiny = lint_governed(&pi, &Budget::unlimited().with_max_steps(1));
        let ex = tiny.exhausted.expect("one step cannot cover fig2");
        assert!(ex.spent <= ex.limit + 1);
        let full_codes = codes(&full.findings);
        for c in codes(&tiny.findings) {
            assert!(full_codes.contains(&c), "phantom finding {c}");
        }
    }

    #[test]
    fn errors_sort_before_warnings() {
        let pi = mutated(|w, opf, _| {
            let r = w.root();
            let a = w.catalog().find_object("A").unwrap();
            let u = w.node(r).unwrap().universe().clone();
            let mut t = OpfTable::new();
            t.set(ChildSet::full(&u), 0.5); // error: not normalised
            opf.insert(r, Opf::Table(t));
            let mut orphan = OpfTable::new();
            orphan.set(ChildSet::Mask(0), 1.0);
            opf.insert(a, Opf::Table(orphan)); // warning: orphan
        });
        let f = lint(&pi);
        assert!(f.len() >= 2);
        assert_eq!(f[0].severity(), Severity::Error);
        assert_eq!(f.last().unwrap().severity(), Severity::Warning);
    }

    #[test]
    fn validate_error_implies_lint_finding() {
        // Cross-check: every mutation that validate rejects must surface
        // at least one error-severity lint finding.
        type Mutation =
            fn(&mut WeakInstance, &mut IdMap<crate::ids::ObjectKind, Opf>, &mut IdMap<crate::ids::ObjectKind, Vpf>);
        let muts: Vec<Mutation> = vec![
            |w, opf, _| {
                let r = w.root();
                let u = w.node(r).unwrap().universe().clone();
                let mut t = OpfTable::new();
                t.set(ChildSet::full(&u), 0.5);
                opf.insert(r, Opf::Table(t));
            },
            |w, opf, _| {
                opf.remove(w.root());
            },
            |w, _, vpf| {
                let a = w.catalog().find_object("A").unwrap();
                vpf.insert(a, Vpf::point(Value::Int(99)));
            },
        ];
        for m in muts {
            let pi = mutated(m);
            assert!(pi.validate().is_err());
            assert!(!is_clean(&lint(&pi)), "validate rejected but lint stayed clean");
        }
    }

    #[test]
    fn leaf_with_children_and_bad_value_flagged() {
        let pi = mutated(|w, _, _| {
            let r = w.root();
            let ty = w.catalog().find_type("t").unwrap();
            let node = w.node(r).unwrap();
            let rebuilt = WeakNode::from_parts(
                node.universe().clone(),
                node.cards().to_vec(),
                Some(LeafInfo { ty, val: Some(Value::Int(42)) }),
            );
            *w.node_mut(r).unwrap() = rebuilt;
        });
        let c = codes(&lint(&pi));
        assert!(c.contains(&"leaf-with-children"));
        assert!(c.contains(&"value-outside-domain"));
    }

    #[test]
    fn normalize_error_matches_lint_degenerate_view() {
        // A zero-total table is both un-normalisable and flagged by lint.
        let pi = mutated(|w, opf, _| {
            let r = w.root();
            let u = w.node(r).unwrap().universe().clone();
            let mut t = OpfTable::new();
            t.set(ChildSet::full(&u), 0.0);
            opf.insert(r, Opf::Table(t));
        });
        assert!(codes(&lint(&pi)).contains(&"not-normalized"));
        let mut zero = OpfTable::new();
        zero.set(ChildSet::Mask(0), 0.0);
        assert!(matches!(zero.normalize(), Err(CoreError::DegenerateMass { .. })));
    }
}
