//! Ordinary semistructured instances (Definition 3.3) and compatibility
//! with weak instances (Definition 4.1).
//!
//! A semistructured instance is a rooted, edge-labelled directed graph
//! whose leaves may carry a typed value. Instances implement structural
//! `Eq`/`Hash` so that possible-worlds tables can merge identical
//! instances (as the ancestor projection of Definition 5.3 requires).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::catalog::Catalog;
use crate::error::{CoreError, Result};
use crate::ids::{IdMap, Label, ObjectId, ObjectKind, TypeId};
use crate::value::Value;
use crate::weak::WeakInstance;

/// Per-object data of a semistructured instance.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SdNode {
    /// Outgoing labelled edges, kept sorted by `(label, child)`.
    children: Vec<(Label, ObjectId)>,
    /// Type and value if this object is a typed leaf. Objects may also be
    /// *bare* leaves (no children, no type) — these arise naturally from
    /// ancestor projection, which cuts subtrees below the located objects.
    leaf: Option<(TypeId, Value)>,
}

impl SdNode {
    /// Assembles a node from parts (children need not be sorted yet —
    /// [`SdInstance::from_parts`] canonicalises).
    pub fn from_parts(children: Vec<(Label, ObjectId)>, leaf: Option<(TypeId, Value)>) -> Self {
        SdNode { children, leaf }
    }

    /// Outgoing edges sorted by `(label, child)`.
    pub fn children(&self) -> &[(Label, ObjectId)] {
        &self.children
    }

    /// The `l`-children of this node.
    pub fn lch(&self, l: Label) -> impl Iterator<Item = ObjectId> + '_ {
        self.children.iter().filter(move |&&(el, _)| el == l).map(|&(_, c)| c)
    }

    /// Type and value if this is a typed leaf.
    pub fn leaf(&self) -> Option<(TypeId, &Value)> {
        self.leaf.as_ref().map(|(t, v)| (*t, v))
    }

    /// True if the node has no outgoing edges.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// A semistructured instance `S = (V, E, ℓ, τ, val)` over a shared catalog.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SdInstance {
    catalog: Arc<Catalog>,
    root: ObjectId,
    nodes: IdMap<ObjectKind, SdNode>,
}

impl SdInstance {
    /// Starts building an instance with a fresh catalog.
    pub fn builder() -> SdInstanceBuilder {
        SdInstanceBuilder { catalog: CatalogHandle::Owned(Box::new(Catalog::new())), nodes: IdMap::new() }
    }

    /// Starts building an instance over an existing shared catalog (used
    /// when deriving instances from a weak instance so that object ids
    /// stay comparable).
    pub fn builder_shared(catalog: Arc<Catalog>) -> SdInstanceBuilder {
        SdInstanceBuilder { catalog: CatalogHandle::Shared(catalog), nodes: IdMap::new() }
    }

    /// Constructs an instance from parts, validating it.
    pub fn from_parts(
        catalog: Arc<Catalog>,
        root: ObjectId,
        mut nodes: IdMap<ObjectKind, SdNode>,
    ) -> Result<Self> {
        for (_, n) in nodes.iter_mut() {
            n.children.sort_unstable();
        }
        let s = SdInstance { catalog, root, nodes };
        s.validate()?;
        Ok(s)
    }

    /// The shared catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The root object.
    pub fn root(&self) -> ObjectId {
        self.root
    }

    /// The vertex set `V` in id order.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.nodes.keys()
    }

    /// Number of objects.
    pub fn object_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.nodes.iter().map(|(_, n)| n.children.len()).sum()
    }

    /// True if `o ∈ V`.
    pub fn contains(&self, o: ObjectId) -> bool {
        self.nodes.contains(o)
    }

    /// Node data for `o`.
    pub fn node(&self, o: ObjectId) -> Option<&SdNode> {
        self.nodes.get(o)
    }

    /// The children `C(o)` (Definition 3.2).
    pub fn children(&self, o: ObjectId) -> Vec<ObjectId> {
        self.nodes.get(o).map(|n| n.children.iter().map(|&(_, c)| c).collect()).unwrap_or_default()
    }

    /// `lch(o, l)` (Definition 3.2).
    pub fn lch(&self, o: ObjectId, l: Label) -> Vec<ObjectId> {
        self.nodes.get(o).map(|n| n.lch(l).collect()).unwrap_or_default()
    }

    /// The parents of `o` (Definition 3.2).
    pub fn parents(&self, o: ObjectId) -> Vec<ObjectId> {
        self.nodes
            .iter()
            .filter(|(_, n)| n.children.iter().any(|&(_, c)| c == o))
            .map(|(p, _)| p)
            .collect()
    }

    /// The descendants `des(o)` (Definition 3.2).
    pub fn descendants(&self, o: ObjectId) -> Vec<ObjectId> {
        let mut seen = Vec::new();
        let mut stack = self.children(o);
        while let Some(c) = stack.pop() {
            if seen.contains(&c) {
                continue;
            }
            seen.push(c);
            stack.extend(self.children(c));
        }
        seen.sort();
        seen
    }

    /// The non-descendants `non-des(o)` (Definition 3.2).
    pub fn non_descendants(&self, o: ObjectId) -> Vec<ObjectId> {
        let des = self.descendants(o);
        self.objects().filter(|&x| x != o && des.binary_search(&x).is_err()).collect()
    }

    /// True if `o` is a leaf (`C(o) = ∅`, Definition 3.2).
    pub fn is_leaf(&self, o: ObjectId) -> bool {
        self.nodes.get(o).is_some_and(SdNode::is_leaf)
    }

    /// The value of a typed leaf.
    pub fn value(&self, o: ObjectId) -> Option<&Value> {
        self.nodes.get(o).and_then(|n| n.leaf.as_ref()).map(|(_, v)| v)
    }

    /// The type of a typed leaf.
    pub fn leaf_type(&self, o: ObjectId) -> Option<TypeId> {
        self.nodes.get(o).and_then(|n| n.leaf.as_ref()).map(|&(t, _)| t)
    }

    /// Structural validation: root present and every object reachable,
    /// children present, at most one edge per `(parent, child)` pair, no
    /// typed leaf with children.
    pub fn validate(&self) -> Result<()> {
        if !self.nodes.contains(self.root) {
            return Err(CoreError::MissingRoot);
        }
        for (o, node) in self.nodes.iter() {
            let mut seen: HashMap<ObjectId, Label> = HashMap::new();
            for &(l, c) in &node.children {
                if !self.nodes.contains(c) {
                    return Err(CoreError::UnknownObject(c));
                }
                match seen.get(&c) {
                    None => {
                        seen.insert(c, l);
                    }
                    Some(&first) if first == l => {
                        return Err(CoreError::DuplicateChild { parent: o, child: c, label: l })
                    }
                    Some(&first) => {
                        return Err(CoreError::AmbiguousChildLabel {
                            parent: o,
                            child: c,
                            first,
                            second: l,
                        })
                    }
                }
            }
            if node.leaf.is_some() && !node.children.is_empty() {
                return Err(CoreError::LeafWithChildren(o));
            }
            if let Some((t, v)) = &node.leaf {
                if !self.catalog.type_def(*t).contains(v) {
                    return Err(CoreError::ValueOutsideDomain(o));
                }
            }
        }
        let mut reached: IdMap<ObjectKind, ()> = IdMap::new();
        let mut stack = vec![self.root];
        while let Some(o) = stack.pop() {
            if reached.insert(o, ()).is_some() {
                continue;
            }
            stack.extend(self.children(o));
        }
        for o in self.objects() {
            if !reached.contains(o) {
                return Err(CoreError::Unreachable(o));
            }
        }
        Ok(())
    }

    /// Checks compatibility with a weak instance (Definition 4.1).
    ///
    /// One reading note recorded in DESIGN.md: the paper's clause "if `o`
    /// is a leaf in `S`, then `o` is also a leaf in `W`" conflicts with the
    /// paper's own Section 6.1, where objects may lose all children under
    /// projection (`℘'(o)({}) = 0` is *set*, implying `℘(o)({})` can be
    /// positive). We therefore check the converse direction — every leaf
    /// of `W` behaves as a typed leaf in `S` — and allow a non-leaf of `W`
    /// to appear childless in `S` whenever `∅ ∈ PC(o)`.
    pub fn compatible_with(&self, w: &WeakInstance) -> Result<()> {
        if !Arc::ptr_eq(&self.catalog, w.catalog())
            && self.catalog.object_count() != w.catalog().object_count()
        {
            return Err(CoreError::CatalogMismatch);
        }
        if self.root != w.root() || !self.contains(w.root()) {
            return Err(CoreError::MissingRoot);
        }
        for (o, node) in self.nodes.iter() {
            let Some(wnode) = w.node(o) else {
                return Err(CoreError::UnknownObject(o));
            };
            if let Some(leaf) = wnode.leaf() {
                // Leaf of W: must be a typed leaf in S with matching type
                // and a value inside the domain.
                match &node.leaf {
                    Some((t, v)) => {
                        if *t != leaf.ty || !self.catalog.type_def(*t).contains(v) {
                            return Err(CoreError::ValueOutsideDomain(o));
                        }
                    }
                    None => return Err(CoreError::MissingVpf(o)),
                }
                if !node.children.is_empty() {
                    return Err(CoreError::LeafWithChildren(o));
                }
            } else {
                if node.leaf.is_some() {
                    // A non-leaf of W cannot carry a typed value in S.
                    return Err(CoreError::ValueWithoutType(o));
                }
                // Each edge must be sanctioned by lch, and per-label counts
                // must respect card (Definition 4.1, last clause).
                let mut counts: HashMap<Label, u32> = HashMap::new();
                for &(l, c) in &node.children {
                    if !wnode.lch(l).any(|x| x == c) {
                        return Err(CoreError::UnknownObject(c));
                    }
                    *counts.entry(l).or_insert(0) += 1;
                }
                for l in wnode.labels() {
                    let k = counts.get(&l).copied().unwrap_or(0);
                    let card = wnode.card(l);
                    if !card.contains(k) {
                        return Err(CoreError::BadCardinality {
                            object: o,
                            label: l,
                            min: card.min,
                            max: card.max,
                            available: k,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Pretty multi-line rendering with catalog names, for examples and
    /// debugging.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut visited = Vec::new();
        self.render_rec(self.root, 0, &mut out, &mut visited);
        out
    }

    fn render_rec(&self, o: ObjectId, depth: usize, out: &mut String, visited: &mut Vec<ObjectId>) {
        use std::fmt::Write;
        let name = self.catalog.objects().try_resolve(o).unwrap_or("?");
        for _ in 0..depth {
            out.push_str("  ");
        }
        match self.nodes.get(o).and_then(|n| n.leaf.as_ref()) {
            Some((t, v)) => {
                let tname = self.catalog.type_def(*t).name();
                let _ = writeln!(out, "{name}: {tname} = {v}");
            }
            None => {
                let _ = writeln!(out, "{name}");
            }
        }
        if visited.contains(&o) {
            return; // shared substructure: do not repeat
        }
        visited.push(o);
        if let Some(node) = self.nodes.get(o) {
            for &(l, c) in &node.children {
                let lname = self.catalog.labels().try_resolve(l).unwrap_or("?");
                for _ in 0..depth {
                    out.push_str("  ");
                }
                let _ = writeln!(out, "  .{lname} ->");
                self.render_rec(c, depth + 2, out, visited);
            }
        }
    }
}

impl PartialEq for SdInstance {
    fn eq(&self, other: &Self) -> bool {
        if self.root != other.root || self.nodes.len() != other.nodes.len() {
            return false;
        }
        self.nodes.iter().all(|(o, n)| other.nodes.get(o) == Some(n))
    }
}
impl Eq for SdInstance {}

impl std::hash::Hash for SdInstance {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.root.hash(state);
        for (o, n) in self.nodes.iter() {
            o.hash(state);
            n.hash(state);
        }
    }
}

impl fmt::Display for SdInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Catalog being either built locally or shared.
#[derive(Debug)]
enum CatalogHandle {
    Owned(Box<Catalog>),
    Shared(Arc<Catalog>),
}

impl CatalogHandle {
    fn as_ref(&self) -> &Catalog {
        match self {
            CatalogHandle::Owned(c) => c,
            CatalogHandle::Shared(c) => c,
        }
    }
    fn as_mut(&mut self) -> &mut Catalog {
        match self {
            CatalogHandle::Owned(c) => c,
            CatalogHandle::Shared(_) => {
                panic!("cannot add names to a shared catalog; use ids that already exist")
            }
        }
    }
    fn into_arc(self) -> Arc<Catalog> {
        match self {
            CatalogHandle::Owned(c) => Arc::new(*c),
            CatalogHandle::Shared(c) => c,
        }
    }
}

/// Builder for [`SdInstance`].
#[derive(Debug)]
pub struct SdInstanceBuilder {
    catalog: CatalogHandle,
    nodes: IdMap<ObjectKind, SdNode>,
}

impl SdInstanceBuilder {
    /// Ensures an object exists by name (owned catalogs only).
    pub fn object(&mut self, name: &str) -> ObjectId {
        let id = self.catalog.as_mut().object(name);
        self.ensure(id);
        id
    }

    /// Ensures an object exists by id (for shared catalogs).
    pub fn object_id(&mut self, id: ObjectId) -> ObjectId {
        self.ensure(id);
        id
    }

    fn ensure(&mut self, id: ObjectId) {
        if !self.nodes.contains(id) {
            self.nodes.insert(id, SdNode::default());
        }
    }

    /// Interns a label (owned catalogs only).
    pub fn label(&mut self, name: &str) -> Label {
        self.catalog.as_mut().label(name)
    }

    /// Registers a type (owned catalogs only).
    pub fn define_type(&mut self, ty: crate::types::LeafType) -> TypeId {
        self.catalog.as_mut().define_type(ty)
    }

    /// Adds an edge `(parent, child)` with `label`.
    pub fn edge(&mut self, parent: ObjectId, label: Label, child: ObjectId) -> &mut Self {
        self.ensure(parent);
        self.ensure(child);
        self.nodes.get_mut(parent).expect("ensured").children.push((label, child));
        self
    }

    /// Adds an edge using string names (owned catalogs only).
    pub fn edge_named(&mut self, parent: &str, label: &str, child: &str) -> &mut Self {
        let p = self.object(parent);
        let l = self.label(label);
        let c = self.object(child);
        self.edge(p, l, c)
    }

    /// Marks `object` as a typed leaf with `value`.
    pub fn leaf_value(&mut self, object: ObjectId, ty: TypeId, value: Value) -> &mut Self {
        self.ensure(object);
        self.nodes.get_mut(object).expect("ensured").leaf = Some((ty, value));
        self
    }

    /// Read access to the catalog being built.
    pub fn catalog(&self) -> &Catalog {
        self.catalog.as_ref()
    }

    /// Finishes the build, validating the instance.
    pub fn build(self, root: ObjectId) -> Result<SdInstance> {
        SdInstance::from_parts(self.catalog.into_arc(), root, self.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{fig1_instance, fig2_weak};
    use crate::types::LeafType;

    #[test]
    fn fig1_builds_with_expected_shape() {
        let s = fig1_instance();
        assert_eq!(s.object_count(), 11);
        let r = s.root();
        let book = s.catalog().find_label("book").unwrap();
        assert_eq!(s.lch(r, book).len(), 3);
    }

    #[test]
    fn children_are_sorted_canonically() {
        let mut b = SdInstance::builder();
        let r = b.object("R");
        let x = b.object("X");
        let y = b.object("Y");
        let l = b.label("l");
        b.edge(r, l, y);
        b.edge(r, l, x);
        let s = b.build(r).unwrap();
        let kids = s.children(r);
        assert!(kids[0] < kids[1]);
    }

    #[test]
    fn equal_instances_hash_equal_regardless_of_insertion_order() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let build = |flip: bool| {
            let mut b = SdInstance::builder();
            let r = b.object("R");
            let x = b.object("X");
            let y = b.object("Y");
            let l = b.label("l");
            if flip {
                b.edge(r, l, y);
                b.edge(r, l, x);
            } else {
                b.edge(r, l, x);
                b.edge(r, l, y);
            }
            b.build(r).unwrap()
        };
        let a = build(false);
        let b = build(true);
        assert_eq!(a, b);
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn dangling_edge_is_rejected_via_unknown_object() {
        let mut nodes: IdMap<ObjectKind, SdNode> = IdMap::new();
        nodes.insert(
            ObjectId::from_raw(0),
            SdNode { children: vec![(Label::from_raw(0), ObjectId::from_raw(9))], leaf: None },
        );
        let mut cat = Catalog::new();
        cat.object("R");
        let r = ObjectId::from_raw(0);
        let res = SdInstance::from_parts(Arc::new(cat), r, nodes);
        assert!(matches!(res, Err(CoreError::UnknownObject(_))));
    }

    #[test]
    fn typed_leaf_with_children_is_rejected() {
        let mut b = SdInstance::builder();
        let t = b.define_type(LeafType::new("t", [Value::Int(1)]));
        let r = b.object("R");
        let c = b.object("C");
        let l = b.label("l");
        b.edge(r, l, c);
        b.leaf_value(r, t, Value::Int(1));
        assert!(matches!(b.build(r), Err(CoreError::LeafWithChildren(_))));
    }

    #[test]
    fn compatible_instance_accepted() {
        // S1 of Figure 3: R -> {B1, B2}, B1 -> {A1, T1}, B2 -> {A1, A2},
        // A1 -> I1, A2 -> I1.
        let s1 = crate::fixtures::fig3_s1();
        let w = fig2_weak();
        s1.compatible_with(&w).unwrap();
    }

    #[test]
    fn card_violation_breaks_compatibility() {
        // R with a single book violates card(R, book) = [2, 3].
        let w = fig2_weak();
        let cat = Arc::clone(w.catalog());
        let mut b = SdInstance::builder_shared(Arc::clone(&cat));
        let r = b.object_id(cat.find_object("R").unwrap());
        let b3 = b.object_id(cat.find_object("B3").unwrap());
        let t2 = b.object_id(cat.find_object("T2").unwrap());
        let a3 = b.object_id(cat.find_object("A3").unwrap());
        let i2 = b.object_id(cat.find_object("I2").unwrap());
        let book = cat.find_label("book").unwrap();
        let title = cat.find_label("title").unwrap();
        let author = cat.find_label("author").unwrap();
        let inst = cat.find_label("institution").unwrap();
        let ty = cat.find_type("title-type").unwrap();
        let ity = cat.find_type("institution-type").unwrap();
        b.edge(r, book, b3);
        b.edge(b3, title, t2);
        b.edge(b3, author, a3);
        b.edge(a3, inst, i2);
        b.leaf_value(t2, ty, Value::str("Lore"));
        b.leaf_value(i2, ity, Value::str("UMD"));
        let s = b.build(r).unwrap();
        assert!(matches!(s.compatible_with(&w), Err(CoreError::BadCardinality { .. })));
    }

    #[test]
    fn foreign_object_breaks_compatibility() {
        let w = fig2_weak();
        let mut b = SdInstance::builder();
        let r = b.object("R"); // different catalog with fewer names
        let s = b.build(r).unwrap();
        assert!(s.compatible_with(&w).is_err());
    }

    #[test]
    fn render_displays_names_and_values() {
        let s = fig1_instance();
        let txt = s.render();
        assert!(txt.contains("R"));
        assert!(txt.contains(".book ->"));
        assert!(txt.contains("VQDB"));
    }

    #[test]
    fn cyclic_instances_are_allowed_and_all_walks_terminate() {
        // Definition 3.1 explicitly allows cycles in ordinary
        // semistructured graphs (only weak instance graphs must be
        // acyclic). Build r -> a -> r and exercise every traversal.
        let mut b = SdInstance::builder();
        let r = b.object("r");
        let a = b.object("a");
        let l = b.label("l");
        b.edge(r, l, a);
        b.edge(a, l, r);
        let s = b.build(r).unwrap();
        assert_eq!(s.descendants(r), {
            let mut v = vec![r, a];
            v.sort();
            v
        });
        assert!(s.non_descendants(r).is_empty());
        let txt = s.render(); // must terminate despite the cycle
        assert!(txt.contains("r"));
        assert_eq!(s.parents(r), vec![a]);
    }

    #[test]
    fn parents_and_descendants() {
        let s = crate::fixtures::fig3_s1();
        let a1 = s.catalog().find_object("A1").unwrap();
        let parents = s.parents(a1);
        assert_eq!(parents.len(), 2); // B1 and B2 share A1
        let des = s.descendants(s.root());
        assert_eq!(des.len(), s.object_count() - 1);
    }
}
