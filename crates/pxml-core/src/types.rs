//! Leaf types and their finite domains.
//!
//! The paper assumes each leaf type has a finite domain over which a value
//! probability function (VPF, Definition 3.9) is defined; e.g.
//! `dom(title-type) = {VQDB, Lore}` in Example 3.1.

use serde::{Deserialize, Serialize};

use crate::ids::{Interner, TypeId, TypeKind};
use crate::value::Value;

/// A leaf type: a name plus a finite ordered domain of values.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LeafType {
    name: String,
    domain: Vec<Value>,
}

impl LeafType {
    /// Creates a type. The domain is deduplicated and sorted into canonical
    /// order so that two types with the same values compare equal.
    pub fn new(name: impl Into<String>, domain: impl IntoIterator<Item = Value>) -> Self {
        let mut domain: Vec<Value> = domain.into_iter().collect();
        domain.sort();
        domain.dedup();
        LeafType { name: name.into(), domain }
    }

    /// The type's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The finite domain `dom(τ)`, in canonical order.
    pub fn domain(&self) -> &[Value] {
        &self.domain
    }

    /// True if `v ∈ dom(τ)`.
    pub fn contains(&self, v: &Value) -> bool {
        self.domain.binary_search(v).is_ok()
    }

    /// Size of the domain.
    pub fn domain_size(&self) -> usize {
        self.domain.len()
    }
}

/// The registry of leaf types of a catalog (the paper's `T`).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TypeTable {
    names: Interner<TypeKind>,
    defs: Vec<LeafType>,
}

impl TypeTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a type, returning its id. Re-registering the same name
    /// replaces the definition (last writer wins) and keeps the id stable.
    pub fn define(&mut self, ty: LeafType) -> TypeId {
        let id = self.names.intern(&ty.name);
        if id.index() == self.defs.len() {
            self.defs.push(ty);
        } else {
            self.defs[id.index()] = ty;
        }
        id
    }

    /// Looks up a type id by name.
    pub fn get(&self, name: &str) -> Option<TypeId> {
        self.names.get(name)
    }

    /// Resolves a type id to its definition.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this table.
    pub fn resolve(&self, id: TypeId) -> &LeafType {
        &self.defs[id.index()]
    }

    /// Resolves a type id without panicking.
    pub fn try_resolve(&self, id: TypeId) -> Option<&LeafType> {
        self.defs.get(id.index())
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True if no types are registered.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Iterates over `(id, definition)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (TypeId, &LeafType)> {
        self.defs.iter().enumerate().map(|(i, d)| (TypeId::from_raw(i as u32), d))
    }

    /// Rebuilds internal lookup indexes after deserialization.
    pub fn rebuild_index(&mut self) {
        self.names.rebuild_index();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn title_type() -> LeafType {
        LeafType::new("title-type", [Value::str("VQDB"), Value::str("Lore")])
    }

    #[test]
    fn domain_is_sorted_and_deduplicated() {
        let t = LeafType::new("t", [Value::Int(2), Value::Int(1), Value::Int(2)]);
        assert_eq!(t.domain(), [Value::Int(1), Value::Int(2)]);
        assert_eq!(t.domain_size(), 2);
    }

    #[test]
    fn contains_checks_membership() {
        let t = title_type();
        assert!(t.contains(&Value::str("VQDB")));
        assert!(!t.contains(&Value::str("TAX")));
    }

    #[test]
    fn define_and_resolve_round_trip() {
        let mut tt = TypeTable::new();
        let id = tt.define(title_type());
        assert_eq!(tt.resolve(id).name(), "title-type");
        assert_eq!(tt.get("title-type"), Some(id));
        assert_eq!(tt.get("missing"), None);
    }

    #[test]
    fn redefining_a_type_keeps_its_id() {
        let mut tt = TypeTable::new();
        let id = tt.define(title_type());
        let id2 = tt.define(LeafType::new("title-type", [Value::str("TAX")]));
        assert_eq!(id, id2);
        assert!(tt.resolve(id).contains(&Value::str("TAX")));
        assert_eq!(tt.len(), 1);
    }

    #[test]
    fn iter_lists_types_in_registration_order() {
        let mut tt = TypeTable::new();
        tt.define(title_type());
        tt.define(LeafType::new("institution-type", [Value::str("Stanford"), Value::str("UMD")]));
        let names: Vec<&str> = tt.iter().map(|(_, d)| d.name()).collect();
        assert_eq!(names, ["title-type", "institution-type"]);
    }
}
