//! Leaf values.
//!
//! Leaf objects of a semistructured instance carry a value drawn from the
//! (finite) domain of their type (Definition 3.3, item 3). Values must be
//! hashable and totally ordered so that value probability functions (VPFs)
//! and canonical instance forms can use them as keys; floats are therefore
//! compared bitwise on a canonicalised representation.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// A value of a leaf object.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Value {
    /// A string value, e.g. a paper title.
    Str(Arc<str>),
    /// A 64-bit signed integer, e.g. a publication year.
    Int(i64),
    /// A 64-bit float, e.g. a measured quantity.
    Float(f64),
    /// A boolean flag.
    Bool(bool),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }

    /// Canonicalises the float payload so that `-0.0 == 0.0` and all NaNs
    /// compare equal. Used by `Eq`/`Hash`/`Ord`.
    fn float_bits(f: f64) -> u64 {
        if f.is_nan() {
            f64::NAN.to_bits()
        } else if f == 0.0 {
            0u64
        } else {
            f.to_bits()
        }
    }

    /// A small integer tag establishing the ordering between variants.
    fn tag(&self) -> u8 {
        match self {
            Value::Str(_) => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 2,
            Value::Bool(_) => 3,
        }
    }

    /// Human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Bool(_) => "bool",
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => Self::float_bits(*a) == Self::float_bits(*b),
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        }
    }
}
impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.tag().hash(state);
        match self {
            Value::Str(s) => s.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => Self::float_bits(*f).hash(state),
            Value::Bool(b) => b.hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => {
                a.partial_cmp(b).unwrap_or_else(|| Self::float_bits(*a).cmp(&Self::float_bits(*b)))
            }
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            _ => self.tag().cmp(&other.tag()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x:?}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn string_values_compare_by_content() {
        assert_eq!(Value::str("VQDB"), Value::str("VQDB"));
        assert_ne!(Value::str("VQDB"), Value::str("Lore"));
        assert!(Value::str("Lore") < Value::str("VQDB"));
    }

    #[test]
    fn negative_zero_equals_positive_zero() {
        assert_eq!(Value::Float(-0.0), Value::Float(0.0));
        assert_eq!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Float(0.0)));
    }

    #[test]
    fn nan_is_self_equal_under_canonicalisation() {
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_eq!(hash_of(&Value::Float(f64::NAN)), hash_of(&Value::Float(f64::NAN)));
    }

    #[test]
    fn cross_variant_ordering_follows_tags() {
        assert!(Value::str("z") < Value::Int(0));
        assert!(Value::Int(i64::MAX) < Value::Float(f64::MIN));
        assert!(Value::Float(0.0) < Value::Bool(false));
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&Value::Int(42)), hash_of(&Value::Int(42)));
        assert_eq!(hash_of(&Value::str("UMD")), hash_of(&Value::str("UMD")));
    }

    #[test]
    fn cross_variant_values_are_unequal() {
        assert_ne!(Value::Int(1), Value::Float(1.0));
        assert_ne!(Value::Bool(true), Value::Int(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::str("VQDB").to_string(), "\"VQDB\"");
        assert_eq!(Value::Int(2003).to_string(), "2003");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from("a"), Value::str("a"));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
    }
}
