//! # pxml-protdb — the related-work baselines of Section 8
//!
//! Re-implementations (from scratch) of the two prior probabilistic
//! semistructured models the paper positions itself against, plus the
//! mappings *into* PXML that establish subsumption:
//!
//! * [`model`] — ProTDB (Nierman & Jagadish [19]): trees with independent
//!   per-child existence probabilities; [`convert::to_pxml`] embeds them
//!   as PXML instances using compact `Opf::Independent` representations,
//!   and the tests exhibit a PXML instance (exactly-one-of-two children)
//!   no ProTDB tree can express.
//! * [`spo`] — the SPO flat probability tables of Dekhtyar et al. [9],
//!   encoded with the `card = [1, 1]` construction the paper describes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod convert;
pub mod model;
pub mod query;
pub mod spo;

pub use convert::to_pxml;
pub use model::{ProtNode, ProtTree};
pub use query::{conjunctive_query, PatternMatch, PatternNode};
pub use spo::{encode_spo, SpoVariable};
