//! The SPO (semistructured probabilistic object) encoding of Dekhtyar,
//! Goldsmith & Hawkes [9], expressed in PXML.
//!
//! Section 8: "our model can represent their table. For each random
//! variable, define a set of children (with the possible variable
//! values) connected to their parent with the same edge label (set as
//! the variable name). The cardinality associated with the parent object
//! with each label is set to [1, 1] so that each random variable can
//! have exactly one value in each possible world."

use std::sync::Arc;

use pxml_core::ids::{IdMap, ObjectKind};
use pxml_core::{
    Catalog, ChildSet, ChildUniverse, ObjectId, Opf, OpfTable, ProbInstance, Value, Vpf,
    WeakInstance, WeakNode,
};

/// One discrete random variable of an SPO table.
#[derive(Clone, Debug)]
pub struct SpoVariable {
    /// Variable name (used as the edge label).
    pub name: String,
    /// `(value, probability)` rows; probabilities must sum to 1.
    pub distribution: Vec<(Value, f64)>,
}

/// Encodes a set of **independent** random variables as a probabilistic
/// instance: one value-object per possible value, `card = [1, 1]` per
/// variable label, and a label-product OPF at the root.
///
/// (A joint SPO table over several variables can be encoded the same way
/// with an explicit [`OpfTable`] over value-object combinations; the
/// independent case shown here is what [9]'s flat tables most often
/// hold.)
pub fn encode_spo(root_name: &str, variables: &[SpoVariable]) -> pxml_core::Result<ProbInstance> {
    let mut catalog = Catalog::new();
    let root = catalog.object(root_name);
    let mut universe = ChildUniverse::new();
    // Value objects named "<var>=<value-index>", each a bare object whose
    // identity (not a VPF) carries the value choice.
    let mut per_label: Vec<(pxml_core::Label, Vec<(u32, f64)>)> = Vec::new();
    let mut value_nodes: Vec<ObjectId> = Vec::new();
    for var in variables {
        let label = catalog.label(&var.name);
        let mut positions = Vec::new();
        for (i, (value, p)) in var.distribution.iter().enumerate() {
            let name = format!("{}={}", var.name, value_slug(value, i));
            let id = catalog.object(&name);
            let pos = universe.push(id, label);
            positions.push((pos, *p));
            value_nodes.push(id);
        }
        per_label.push((label, positions));
    }

    // Root OPF: product over variables of (choose exactly one value).
    let mut entries: Vec<(Vec<u32>, f64)> = vec![(Vec::new(), 1.0)];
    for (_, positions) in &per_label {
        let mut next = Vec::with_capacity(entries.len() * positions.len());
        for (base, bp) in &entries {
            for &(pos, p) in positions {
                let mut set = base.clone();
                set.push(pos);
                next.push((set, bp * p));
            }
        }
        entries = next;
    }
    let table = OpfTable::from_entries(
        entries
            .into_iter()
            .map(|(positions, p)| (ChildSet::from_positions(&universe, positions), p)),
    );

    let mut nodes: IdMap<ObjectKind, WeakNode> = IdMap::new();
    let mut cards = Vec::new();
    for (label, _) in &per_label {
        cards.push((*label, pxml_core::Card::new(1, 1)));
    }
    nodes.insert(root, WeakNode::from_parts(universe, cards, None));
    for id in value_nodes {
        nodes.insert(id, WeakNode::from_parts(ChildUniverse::new(), Vec::new(), None));
    }
    let mut opfs: IdMap<ObjectKind, Opf> = IdMap::new();
    opfs.insert(root, Opf::Table(table));
    let weak = WeakInstance::from_parts(Arc::new(catalog), root, nodes)?;
    ProbInstance::from_parts(weak, opfs, IdMap::<ObjectKind, Vpf>::new())
}

fn value_slug(v: &Value, i: usize) -> String {
    match v {
        Value::Str(s) => s.to_string(),
        Value::Int(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Float(_) => format!("v{i}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_core::enumerate_worlds;

    fn weather_vars() -> Vec<SpoVariable> {
        vec![
            SpoVariable {
                name: "sky".into(),
                distribution: vec![
                    (Value::str("clear"), 0.7),
                    (Value::str("cloudy"), 0.3),
                ],
            },
            SpoVariable {
                name: "wind".into(),
                distribution: vec![
                    (Value::str("calm"), 0.5),
                    (Value::str("breezy"), 0.3),
                    (Value::str("gale"), 0.2),
                ],
            },
        ]
    }

    #[test]
    fn every_world_assigns_exactly_one_value_per_variable() {
        let pi = encode_spo("obs", &weather_vars()).unwrap();
        let worlds = enumerate_worlds(&pi).unwrap();
        assert_eq!(worlds.len(), 6); // 2 × 3 joint assignments
        assert!((worlds.total() - 1.0).abs() < 1e-9);
        let sky = pi.lid("sky").unwrap();
        let wind = pi.lid("wind").unwrap();
        for (s, _) in worlds.iter() {
            assert_eq!(s.lch(pi.root(), sky).len(), 1);
            assert_eq!(s.lch(pi.root(), wind).len(), 1);
        }
    }

    #[test]
    fn marginals_match_the_spo_table() {
        let pi = encode_spo("obs", &weather_vars()).unwrap();
        let worlds = enumerate_worlds(&pi).unwrap();
        let clear = pi.oid("sky=clear").unwrap();
        let gale = pi.oid("wind=gale").unwrap();
        assert!((worlds.probability_that(|s| s.contains(clear)) - 0.7).abs() < 1e-9);
        assert!((worlds.probability_that(|s| s.contains(gale)) - 0.2).abs() < 1e-9);
        // Independence across variables.
        let joint = worlds.probability_that(|s| s.contains(clear) && s.contains(gale));
        assert!((joint - 0.14).abs() < 1e-9);
    }

    #[test]
    fn cardinality_is_one_one_per_variable() {
        let pi = encode_spo("obs", &weather_vars()).unwrap();
        let node = pi.weak().node(pi.root()).unwrap();
        for (label, _) in [("sky", 0), ("wind", 1)] {
            let l = pi.lid(label).unwrap();
            let card = node.card(l);
            assert_eq!((card.min, card.max), (1, 1));
        }
    }
}
