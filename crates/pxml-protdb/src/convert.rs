//! The subsumption mapping: ProTDB trees as PXML probabilistic instances.
//!
//! Each ProTDB node's independent child probabilities become a compact
//! [`pxml_core::IndependentOpf`] — the special case of an OPF that §8
//! identifies. The converse does not hold: an OPF correlating children
//! (e.g. exactly-one-of-two) has no independent-probability encoding,
//! demonstrated in the tests below.

use std::sync::Arc;

use pxml_core::ids::{IdMap, ObjectKind};
use pxml_core::{
    Catalog, ChildUniverse, IndependentOpf, LeafInfo, ObjectId, Opf, ProbInstance, Vpf,
    WeakInstance, WeakNode,
};

use crate::model::{ProtNode, ProtTree};

/// Converts a ProTDB tree into an equivalent PXML probabilistic instance.
///
/// The resulting instance uses `Opf::Independent` throughout — storing
/// `b` parameters per node instead of `2^b` table entries.
pub fn to_pxml(tree: &ProtTree) -> pxml_core::Result<ProbInstance> {
    let mut catalog = Catalog::new();
    for ty in &tree.types {
        catalog.define_type(ty.clone());
    }
    let root = catalog.object(&tree.root);
    let mut nodes: IdMap<ObjectKind, WeakNode> = IdMap::new();
    let mut opfs: IdMap<ObjectKind, Opf> = IdMap::new();
    let mut vpfs: IdMap<ObjectKind, Vpf> = IdMap::new();

    build(&mut catalog, &mut nodes, &mut opfs, &mut vpfs, root, &tree.children)?;

    let weak = WeakInstance::from_parts(Arc::new(catalog), root, nodes)?;
    ProbInstance::from_parts(weak, opfs, vpfs)
}

fn build(
    catalog: &mut Catalog,
    nodes: &mut IdMap<ObjectKind, WeakNode>,
    opfs: &mut IdMap<ObjectKind, Opf>,
    vpfs: &mut IdMap<ObjectKind, Vpf>,
    parent: ObjectId,
    children: &[ProtNode],
) -> pxml_core::Result<()> {
    let mut universe = ChildUniverse::new();
    let mut probs = Vec::with_capacity(children.len());
    let mut child_ids = Vec::with_capacity(children.len());
    for c in children {
        let label = catalog.label(&c.label);
        let id = catalog.object(&c.name);
        universe.push(id, label);
        probs.push(c.prob);
        child_ids.push(id);
    }
    if !children.is_empty() {
        opfs.insert(parent, Opf::Independent(IndependentOpf::new(probs)));
    }
    // The parent node may already exist if it is a leaf-typed child: in
    // ProTDB a node has either children or a value.
    let parent_leaf = nodes.get(parent).and_then(|n| n.leaf().cloned());
    nodes.insert(parent, WeakNode::from_parts(universe, Vec::new(), parent_leaf));

    for (c, id) in children.iter().zip(child_ids) {
        match &c.value {
            Some((ty_name, value)) => {
                let ty = catalog
                    .find_type(ty_name)
                    .ok_or_else(|| pxml_core::CoreError::NameNotFound(ty_name.clone()))?;
                nodes.insert(
                    id,
                    WeakNode::from_parts(
                        ChildUniverse::new(),
                        Vec::new(),
                        Some(LeafInfo { ty, val: Some(value.clone()) }),
                    ),
                );
                vpfs.insert(id, Vpf::point(value.clone()));
            }
            None => {
                build(catalog, nodes, opfs, vpfs, id, &c.children)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ProtNode;
    use pxml_core::{enumerate_worlds, LeafType, Value};
    use pxml_query::chain_probability_named;

    fn small_tree() -> ProtTree {
        ProtTree {
            root: "R".into(),
            types: vec![LeafType::new("t", [Value::Int(1), Value::Int(2)])],
            children: vec![
                ProtNode::internal(
                    "B1",
                    "book",
                    0.6,
                    vec![ProtNode::leaf("T1", "title", 0.5, "t", Value::Int(1))],
                ),
                ProtNode::leaf("B2", "book", 0.9, "t", Value::Int(2)),
            ],
        }
    }

    #[test]
    fn conversion_produces_a_valid_instance() {
        let pi = to_pxml(&small_tree()).unwrap();
        pi.validate().unwrap();
        assert_eq!(pi.object_count(), 4);
        // The root's OPF is the compact independent form.
        assert!(matches!(pi.opf(pi.root()), Some(Opf::Independent(_))));
    }

    #[test]
    fn chain_probabilities_agree_between_models() {
        let tree = small_tree();
        let pi = to_pxml(&tree).unwrap();
        for chain in [vec!["R", "B1"], vec!["R", "B2"], vec!["R", "B1", "T1"]] {
            let protdb = tree.chain_probability(&chain).unwrap();
            let pxml = chain_probability_named(&pi, &chain).unwrap();
            assert!((protdb - pxml).abs() < 1e-9, "chain {chain:?}");
        }
    }

    #[test]
    fn worlds_of_converted_tree_factor_independently() {
        let pi = to_pxml(&small_tree()).unwrap();
        let worlds = enumerate_worlds(&pi).unwrap();
        assert!((worlds.total() - 1.0).abs() < 1e-9);
        let b1 = pi.oid("B1").unwrap();
        let b2 = pi.oid("B2").unwrap();
        let p_b1 = worlds.probability_that(|s| s.contains(b1));
        let p_b2 = worlds.probability_that(|s| s.contains(b2));
        let p_both = worlds.probability_that(|s| s.contains(b1) && s.contains(b2));
        assert!((p_b1 - 0.6).abs() < 1e-9);
        assert!((p_b2 - 0.9).abs() < 1e-9);
        assert!((p_both - p_b1 * p_b2).abs() < 1e-9, "ProTDB children are independent");
    }

    #[test]
    fn pxml_expresses_correlations_protdb_cannot() {
        // PXML: exactly one of {A, B} exists (perfect anti-correlation).
        let mut b = pxml_core::ProbInstance::builder();
        let r = b.object("r");
        b.lch("r", "x", &["A", "B"]);
        b.opf_table("r", &[(&["A"], 0.5), (&["B"], 0.5)]);
        let pi = b.build(r).unwrap();
        let worlds = enumerate_worlds(&pi).unwrap();
        let a = pi.oid("A").unwrap();
        let bb = pi.oid("B").unwrap();
        let pa = worlds.probability_that(|s| s.contains(a));
        let pb = worlds.probability_that(|s| s.contains(bb));
        let pboth = worlds.probability_that(|s| s.contains(a) && s.contains(bb));
        // Any ProTDB tree with the same marginals predicts joint 0.25;
        // the PXML instance realises joint 0.
        assert!((pa - 0.5).abs() < 1e-9);
        assert!((pb - 0.5).abs() < 1e-9);
        assert!(pboth.abs() < 1e-9);
        assert!((pa * pb - 0.25).abs() < 1e-9, "independence would force 0.25");
    }
}
