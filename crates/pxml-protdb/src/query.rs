//! ProTDB-style conjunctive (pattern-tree) queries.
//!
//! Section 8 of the PXML paper contrasts its path-expression algebra
//! with ProTDB's query model: "in their conjunctive query, given a query
//! pattern tree, they return a set of subtrees (with some modified node
//! probabilities) from the given instance, each with a global
//! probability". This module implements that query over [`ProtTree`]s:
//! every embedding of the pattern into the data tree is returned with
//! the product of the independent existence probabilities of all matched
//! nodes — and the tests cross-check each match probability against the
//! possible-worlds semantics of the PXML embedding, exhibiting the §8
//! relationship concretely.

use crate::model::{ProtNode, ProtTree};

/// A node of a query pattern tree: an edge label plus sub-patterns.
#[derive(Clone, Debug)]
pub struct PatternNode {
    /// Required label of the edge from the parent.
    pub label: String,
    /// Sub-patterns that must embed below the matched node.
    pub children: Vec<PatternNode>,
}

impl PatternNode {
    /// A leaf pattern.
    pub fn leaf(label: &str) -> Self {
        PatternNode { label: label.into(), children: Vec::new() }
    }

    /// An internal pattern.
    pub fn internal(label: &str, children: Vec<PatternNode>) -> Self {
        PatternNode { label: label.into(), children }
    }
}

/// One embedding of the pattern: the matched node names (preorder) and
/// the match's global probability — the product of the matched nodes'
/// independent existence probabilities (ProTDB semantics).
#[derive(Clone, Debug, PartialEq)]
pub struct PatternMatch {
    /// Matched data-node names, in pattern preorder.
    pub nodes: Vec<String>,
    /// Probability that every matched node exists.
    pub probability: f64,
}

/// Evaluates a conjunctive query: the pattern's top-level entries must
/// embed (injectively) below the data root. Returns every embedding.
pub fn conjunctive_query(tree: &ProtTree, pattern: &[PatternNode]) -> Vec<PatternMatch> {
    let mut out = Vec::new();
    embed_children(&tree.children, pattern, 1.0, &mut Vec::new(), &mut out);
    out
}

/// Recursively embeds `patterns` into distinct members of `candidates`.
fn embed_children(
    candidates: &[ProtNode],
    patterns: &[PatternNode],
    prob: f64,
    matched: &mut Vec<String>,
    out: &mut Vec<PatternMatch>,
) {
    let Some((first, rest)) = patterns.split_first() else {
        out.push(PatternMatch { nodes: matched.clone(), probability: prob });
        return;
    };
    for cand in candidates {
        if cand.label != first.label || matched.contains(&cand.name) {
            continue;
        }
        matched.push(cand.name.clone());
        // Embed this pattern node's children below the candidate, then
        // continue with the remaining sibling patterns (which may match
        // other candidates, but never a node already matched).
        let mut inner: Vec<PatternMatch> = Vec::new();
        embed_children(&cand.children, &first.children, prob * cand.prob, matched, &mut inner);
        for partial in inner {
            let mut matched2 = partial.nodes;
            embed_children(candidates, rest, partial.probability, &mut matched2, out);
        }
        matched.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::to_pxml;
    use pxml_core::{enumerate_worlds, LeafType, Value};

    fn library() -> ProtTree {
        ProtTree {
            root: "R".into(),
            types: vec![LeafType::new("t", [Value::Int(1)])],
            children: vec![
                ProtNode::internal(
                    "B1",
                    "book",
                    0.6,
                    vec![
                        ProtNode::leaf("T1", "title", 0.9, "t", Value::Int(1)),
                        ProtNode::leaf("A1", "author", 0.5, "t", Value::Int(1)),
                    ],
                ),
                ProtNode::internal(
                    "B2",
                    "book",
                    0.8,
                    vec![ProtNode::leaf("A2", "author", 0.7, "t", Value::Int(1))],
                ),
            ],
        }
    }

    #[test]
    fn single_node_pattern_matches_each_book() {
        let matches = conjunctive_query(&library(), &[PatternNode::leaf("book")]);
        assert_eq!(matches.len(), 2);
        let probs: Vec<f64> = matches.iter().map(|m| m.probability).collect();
        assert!(probs.contains(&0.6));
        assert!(probs.contains(&0.8));
    }

    #[test]
    fn nested_pattern_multiplies_probabilities() {
        let pattern =
            [PatternNode::internal("book", vec![PatternNode::leaf("author")])];
        let matches = conjunctive_query(&library(), &pattern);
        assert_eq!(matches.len(), 2);
        for m in &matches {
            match m.nodes[0].as_str() {
                "B1" => assert!((m.probability - 0.6 * 0.5).abs() < 1e-12),
                "B2" => assert!((m.probability - 0.8 * 0.7).abs() < 1e-12),
                other => panic!("unexpected match root {other}"),
            }
        }
    }

    #[test]
    fn sibling_patterns_embed_injectively() {
        // Two book patterns must match two DIFFERENT books.
        let pattern = [PatternNode::leaf("book"), PatternNode::leaf("book")];
        let matches = conjunctive_query(&library(), &pattern);
        // (B1, B2) and (B2, B1).
        assert_eq!(matches.len(), 2);
        for m in &matches {
            assert!((m.probability - 0.6 * 0.8).abs() < 1e-12);
            assert_ne!(m.nodes[0], m.nodes[1]);
        }
    }

    #[test]
    fn unmatched_pattern_returns_nothing() {
        let matches = conjunctive_query(&library(), &[PatternNode::leaf("publisher")]);
        assert!(matches.is_empty());
    }

    #[test]
    fn match_probability_equals_pxml_world_probability() {
        // The §8 relationship: a ProTDB match probability is exactly the
        // PXML probability that all matched nodes exist.
        let tree = library();
        let pi = to_pxml(&tree).unwrap();
        let worlds = enumerate_worlds(&pi).unwrap();
        let pattern =
            [PatternNode::internal("book", vec![PatternNode::leaf("author")])];
        for m in conjunctive_query(&tree, &pattern) {
            let ids: Vec<_> = m.nodes.iter().map(|n| pi.oid(n).unwrap()).collect();
            let direct =
                worlds.probability_that(|s| ids.iter().all(|&o| s.contains(o)));
            assert!(
                (m.probability - direct).abs() < 1e-9,
                "match {:?}: {} vs {}",
                m.nodes,
                m.probability,
                direct
            );
        }
    }
}
