//! The ProTDB probabilistic-XML model (Nierman & Jagadish [19]).
//!
//! ProTDB attaches an *independent* existence probability to each
//! individual child of a node, and requires tree-structured dependencies.
//! Section 8 of the PXML paper: "In ProTDB, independent probabilities
//! are assigned to each individual child of an object; PXML supports
//! arbitrary distributions over sets of children. […] Thus PXML data
//! model subsumes ProTDB data model."

use pxml_core::{LeafType, Value};

/// A node of a ProTDB tree (other than the root).
#[derive(Clone, Debug)]
pub struct ProtNode {
    /// Object name (must be unique in the tree).
    pub name: String,
    /// Label of the edge from the parent.
    pub label: String,
    /// Independent existence probability given the parent exists.
    pub prob: f64,
    /// Children (present only when this node exists).
    pub children: Vec<ProtNode>,
    /// Leaf payload: type name and fixed value.
    pub value: Option<(String, Value)>,
}

impl ProtNode {
    /// Creates an internal node.
    pub fn internal(name: &str, label: &str, prob: f64, children: Vec<ProtNode>) -> Self {
        ProtNode { name: name.into(), label: label.into(), prob, children, value: None }
    }

    /// Creates a leaf node with a typed value.
    pub fn leaf(name: &str, label: &str, prob: f64, ty: &str, value: Value) -> Self {
        ProtNode {
            name: name.into(),
            label: label.into(),
            prob,
            children: Vec::new(),
            value: Some((ty.into(), value)),
        }
    }

    /// Nodes in this subtree (including self).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(ProtNode::size).sum::<usize>()
    }
}

/// A ProTDB probabilistic tree.
#[derive(Clone, Debug)]
pub struct ProtTree {
    /// Name of the (always-present) root.
    pub root: String,
    /// Leaf types used by the tree.
    pub types: Vec<LeafType>,
    /// The root's children.
    pub children: Vec<ProtNode>,
}

impl ProtTree {
    /// Number of objects including the root.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(ProtNode::size).sum::<usize>()
    }

    /// The probability that a root-to-node *name* chain exists under
    /// ProTDB semantics: the product of the independent existence
    /// probabilities along the chain.
    pub fn chain_probability(&self, names: &[&str]) -> Option<f64> {
        let (&first, rest) = names.split_first()?;
        if first != self.root {
            return None;
        }
        let mut level = &self.children;
        let mut p = 1.0;
        for &name in rest {
            let node = level.iter().find(|n| n.name == name)?;
            p *= node.prob;
            level = &node.children;
        }
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn small_tree() -> ProtTree {
        ProtTree {
            root: "R".into(),
            types: vec![LeafType::new("t", [Value::Int(1), Value::Int(2)])],
            children: vec![
                ProtNode::internal(
                    "B1",
                    "book",
                    0.6,
                    vec![ProtNode::leaf("T1", "title", 0.5, "t", Value::Int(1))],
                ),
                ProtNode::leaf("B2", "book", 0.9, "t", Value::Int(2)),
            ],
        }
    }

    #[test]
    fn size_counts_all_nodes() {
        assert_eq!(small_tree().size(), 4);
    }

    #[test]
    fn chain_probability_multiplies_independent_probs() {
        let t = small_tree();
        assert!((t.chain_probability(&["R", "B1"]).unwrap() - 0.6).abs() < 1e-12);
        assert!((t.chain_probability(&["R", "B1", "T1"]).unwrap() - 0.3).abs() < 1e-12);
        assert!(t.chain_probability(&["R", "ghost"]).is_none());
        assert!(t.chain_probability(&["X"]).is_none());
    }
}
