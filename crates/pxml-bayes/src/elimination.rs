//! Bucket (variable) elimination — Dechter [8].
//!
//! Eliminates variables one at a time: all factors mentioning the
//! variable are multiplied together and the variable is summed out of the
//! product. The remaining factors are finally multiplied into a single
//! factor over the kept (query) variables.

use crate::factor::{Factor, Var};
use crate::ordering::min_degree_order;

/// Eliminates every variable except `keep`, using a min-degree ordering.
/// Returns the (unnormalised) joint factor over `keep`.
pub fn eliminate_all_but(factors: &[Factor], keep: &[Var], n_vars: usize) -> Factor {
    let all: Vec<Var> = (0..n_vars).map(Var).collect();
    let eliminate: Vec<Var> = all.into_iter().filter(|v| !keep.contains(v)).collect();
    let order = min_degree_order(factors, n_vars, &eliminate);
    eliminate_in_order(factors, &order)
}

/// Eliminates the given variables in the given order; multiplies the
/// residual factors into one result.
pub fn eliminate_in_order(factors: &[Factor], order: &[Var]) -> Factor {
    let mut pool: Vec<Factor> = factors.to_vec();
    for &v in order {
        // Bucket: all factors whose scope mentions v.
        let (bucket, rest): (Vec<Factor>, Vec<Factor>) =
            pool.into_iter().partition(|f| f.vars().contains(&v));
        pool = rest;
        if bucket.is_empty() {
            continue;
        }
        let product = bucket
            .into_iter()
            .reduce(|a, b| a.multiply(&b))
            .expect("bucket is non-empty");
        pool.push(product.sum_out(v));
    }
    pool.into_iter().reduce(|a, b| a.multiply(&b)).unwrap_or_else(Factor::unit)
}

/// Applies evidence (`var := state`) to every factor before running a
/// query.
pub fn with_evidence(factors: &[Factor], evidence: &[(Var, usize)]) -> Vec<Factor> {
    factors
        .iter()
        .map(|f| {
            let mut g = f.clone();
            for &(v, s) in evidence {
                g = g.restrict(v, s);
            }
            g
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-variable chain: P(a) · P(b | a).
    fn chain() -> Vec<Factor> {
        let pa = Factor::new(vec![Var(0)], vec![2], vec![0.3, 0.7]);
        // P(b|a): rows a, cols b.
        let pba = Factor::new(vec![Var(0), Var(1)], vec![2, 2], vec![0.9, 0.1, 0.2, 0.8]);
        vec![pa, pba]
    }

    #[test]
    fn marginal_of_chain_tail() {
        let mut pb = eliminate_all_but(&chain(), &[Var(1)], 2);
        pb.normalize();
        // P(b=0) = 0.3·0.9 + 0.7·0.2 = 0.41.
        assert!((pb.at(&[0]) - 0.41).abs() < 1e-12);
        assert!((pb.at(&[1]) - 0.59).abs() < 1e-12);
    }

    #[test]
    fn elimination_preserves_total_mass() {
        let everything = eliminate_all_but(&chain(), &[], 2);
        assert!((everything.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn evidence_conditions_the_query() {
        // P(a | b = 0) ∝ P(a) P(b=0|a).
        let fs = with_evidence(&chain(), &[(Var(1), 0)]);
        let mut pa = eliminate_all_but(&fs, &[Var(0)], 2);
        let prior = pa.normalize();
        assert!((prior - 0.41).abs() < 1e-12);
        assert!((pa.at(&[0]) - 0.27 / 0.41).abs() < 1e-12);
    }

    #[test]
    fn keeping_all_vars_gives_the_joint() {
        let joint = eliminate_all_but(&chain(), &[Var(0), Var(1)], 2);
        assert!((joint.total() - 1.0).abs() < 1e-12);
        // Entry order may differ; check one cell via at().
        let a0b1 = match joint.vars() {
            [Var(0), Var(1)] => joint.at(&[0, 1]),
            [Var(1), Var(0)] => joint.at(&[1, 0]),
            other => panic!("unexpected scope {other:?}"),
        };
        assert!((a0b1 - 0.03).abs() < 1e-12);
    }

    #[test]
    fn disconnected_factors_multiply() {
        let fa = Factor::new(vec![Var(0)], vec![2], vec![0.5, 0.5]);
        let fb = Factor::new(vec![Var(1)], vec![2], vec![0.1, 0.9]);
        let m = eliminate_all_but(&[fa, fb], &[Var(1)], 2);
        assert!((m.at(&[1]) - 0.9).abs() < 1e-12);
    }
}
