//! # pxml-bayes — Bayesian-network inference for PXML
//!
//! Section 6 of the paper observes that "there is a mapping between a
//! probabilistic instance and a Bayesian network" and that off-the-shelf
//! inference answers PXML queries without enumerating compatible worlds.
//! This crate *is* that substrate, built from scratch:
//!
//! * [`factor`] — discrete potential tables with multiply / sum-out /
//!   restrict;
//! * [`ordering`] — greedy min-degree and min-fill elimination orderings
//!   over the interaction graph (induced-width control);
//! * [`elimination`] — bucket elimination (Dechter [8]) with evidence;
//! * [`network`] — the object-variable encoding of a probabilistic
//!   instance (gated CPTs: an object is absent unless some parent's
//!   chosen child set contains it) and marginal / joint-presence queries.
//!
//! Unlike the ε-propagation of `pxml-query` (exact only on trees), the
//! network answers presence and value marginals exactly on arbitrary
//! acyclic instances, at a cost governed by the induced width.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod elimination;
pub mod factor;
pub mod network;
pub mod ordering;

pub use elimination::{eliminate_all_but, eliminate_in_order, with_evidence};
pub use factor::{Factor, Var};
pub use network::{Network, State, VarInfo};
pub use ordering::{interaction_graph, min_degree_order, min_fill_order};
