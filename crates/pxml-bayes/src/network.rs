//! Compilation of a probabilistic instance into a Bayesian network.
//!
//! Section 6 of the paper: "there is a mapping between a probabilistic
//! instance and a Bayesian network. For any query, there is a mapping to
//! an equivalent query in the Bayesian network." The mapping used here:
//!
//! * one variable per object `o`;
//! * a non-leaf's states are its OPF support sets plus `absent`;
//!   a typed leaf's states are its domain values plus `absent`;
//!   a bare object's states are `present`/`absent`;
//! * `X_o`'s parents are `o`'s weak-graph parents. The CPT is the gated
//!   distribution: if no parent's chosen set contains `o`, `X_o = absent`
//!   with probability 1; otherwise `X_o` follows `℘(o)`.
//!
//! This is exactly the factorisation of Theorem 1, so variable
//! elimination over this network reproduces the possible-worlds
//! marginals without enumeration — including on DAG-shaped instances
//! where the tree-only ε algorithms of `pxml-query` do not apply.

use std::collections::HashMap;

use pxml_core::{ChildSet, ObjectId, ProbInstance, Value};

use crate::factor::{Factor, Var};

/// A state of an object variable.
#[derive(Clone, Debug, PartialEq)]
pub enum State {
    /// The object does not occur in the world.
    Absent,
    /// A non-leaf occurs with this exact child set.
    Children(ChildSet),
    /// A typed leaf occurs with this value.
    Value(Value),
    /// A bare childless object occurs.
    Present,
}

impl State {
    /// True for any present state.
    pub fn is_present(&self) -> bool {
        !matches!(self, State::Absent)
    }
}

/// Variable metadata.
#[derive(Clone, Debug)]
pub struct VarInfo {
    /// The object this variable models.
    pub object: ObjectId,
    /// The variable's states; index 0 is always `Absent` for non-roots.
    pub states: Vec<State>,
}

/// A compiled Bayesian network.
#[derive(Clone, Debug)]
pub struct Network {
    vars: Vec<VarInfo>,
    factors: Vec<Factor>,
    var_of: HashMap<ObjectId, Var>,
    root: ObjectId,
}

impl Network {
    /// Compiles `pi` into a network (one CPT factor per object).
    pub fn compile(pi: &ProbInstance) -> Network {
        let order = pi.weak().topo_order().expect("validated instances are acyclic");
        let parents_map = pi.weak().parents();
        let mut vars: Vec<VarInfo> = Vec::with_capacity(order.len());
        let mut var_of: HashMap<ObjectId, Var> = HashMap::new();

        // States per object.
        for &o in &order {
            let node = pi.weak().node(o).expect("iterating");
            let mut states = vec![State::Absent];
            if let Some(_leaf) = node.leaf() {
                let vpf = pi.vpf(o).expect("validated: typed leaf has VPF");
                for (v, _) in vpf.iter() {
                    states.push(State::Value(v.clone()));
                }
            } else if node.is_childless() {
                states.push(State::Present);
            } else {
                let table = pi.opf(o).expect("validated: non-leaf has OPF").to_table(node.universe());
                for (set, _) in table.iter() {
                    states.push(State::Children(set.clone()));
                }
            }
            var_of.insert(o, Var(vars.len()));
            vars.push(VarInfo { object: o, states });
        }

        // CPT factors.
        let mut factors = Vec::with_capacity(order.len());
        for &o in &order {
            let v = var_of[&o];
            let my_states = vars[v.0].states.clone();
            let my_card = my_states.len();
            // Local conditional distribution given presence.
            let node = pi.weak().node(o).expect("iterating");
            let present_dist: Vec<f64> = my_states
                .iter()
                .map(|s| match s {
                    State::Absent => 0.0,
                    State::Present => 1.0,
                    State::Children(set) => pi.opf(o).expect("non-leaf OPF").prob(set),
                    State::Value(val) => pi.vpf(o).expect("leaf VPF").prob(val),
                })
                .collect();
            let parents: Vec<ObjectId> =
                parents_map.get(o).cloned().unwrap_or_default();
            if o == pi.root() {
                // The root is always present: prior = present_dist with
                // Absent mass 0.
                factors.push(Factor::new(vec![v], vec![my_card], present_dist));
                continue;
            }
            // Parent variables and, per parent state, whether it includes o.
            let pvars: Vec<Var> = parents.iter().map(|p| var_of[p]).collect();
            let pcards: Vec<usize> = pvars.iter().map(|pv| vars[pv.0].states.len()).collect();
            let includes: Vec<Vec<bool>> = parents
                .iter()
                .map(|&p| {
                    let pnode = pi.weak().node(p).expect("parent exists");
                    vars[var_of[&p].0]
                        .states
                        .iter()
                        .map(|s| match s {
                            State::Children(set) => set.contains_object(pnode.universe(), o),
                            _ => false,
                        })
                        .collect()
                })
                .collect();
            // Factor over (parents…, self), self fastest.
            let mut fvars = pvars.clone();
            fvars.push(v);
            let mut fcards = pcards.clone();
            fcards.push(my_card);
            let total: usize = fcards.iter().product();
            let mut values = Vec::with_capacity(total);
            let mut assignment = vec![0usize; fvars.len()];
            for _ in 0..total {
                let chosen = assignment[fvars.len() - 1];
                let any_parent_includes = assignment[..fvars.len() - 1]
                    .iter()
                    .enumerate()
                    .any(|(i, &ps)| includes[i][ps]);
                let p = if any_parent_includes {
                    present_dist[chosen]
                } else if chosen == 0 {
                    1.0 // forced absent
                } else {
                    0.0
                };
                values.push(p);
                for i in (0..fvars.len()).rev() {
                    assignment[i] += 1;
                    if assignment[i] < fcards[i] {
                        break;
                    }
                    assignment[i] = 0;
                }
            }
            let _ = node;
            factors.push(Factor::new(fvars, fcards, values));
        }

        Network { vars, factors, var_of, root: pi.root() }
    }

    /// The network's variables.
    pub fn vars(&self) -> &[VarInfo] {
        &self.vars
    }

    /// The CPT factors.
    pub fn factors(&self) -> &[Factor] {
        &self.factors
    }

    /// The variable for an object.
    pub fn var(&self, o: ObjectId) -> Option<Var> {
        self.var_of.get(&o).copied()
    }

    /// The instance root.
    pub fn root(&self) -> ObjectId {
        self.root
    }

    /// Marginal distribution over the states of `o`'s variable, by
    /// variable elimination.
    pub fn marginal(&self, o: ObjectId) -> Vec<f64> {
        let target = self.var(o).expect("object has a variable");
        let mut result =
            crate::elimination::eliminate_all_but(&self.factors, &[target], self.vars.len());
        result.normalize();
        let card = self.vars[target.0].states.len();
        (0..card).map(|s| result.at(&[s])).collect()
    }

    /// `P(o present)` by variable elimination.
    pub fn presence_probability(&self, o: ObjectId) -> f64 {
        let m = self.marginal(o);
        1.0 - m.first().copied().unwrap_or(0.0)
    }

    /// Posterior marginal of `o` given *exact-state* evidence: each entry
    /// fixes an object's variable to one concrete state (an exact child
    /// set or leaf value; index via [`Network::state_index`]). For the
    /// weaker "object is present" observation use
    /// [`Network::presence_given_present`]. Returns
    /// `(marginal, prior_of_evidence)`.
    pub fn marginal_given(
        &self,
        o: ObjectId,
        evidence: &[(ObjectId, usize)],
    ) -> (Vec<f64>, f64) {
        let ev: Vec<(Var, usize)> = evidence
            .iter()
            .map(|&(obj, s)| (self.var(obj).expect("object has a variable"), s))
            .collect();
        let factors = crate::elimination::with_evidence(&self.factors, &ev);
        let target = self.var(o).expect("object has a variable");
        let mut joint =
            crate::elimination::eliminate_all_but(&factors, &[target], self.vars.len());
        let prior = joint.normalize();
        let card = self.vars[target.0].states.len();
        ((0..card).map(|s| joint.at(&[s])).collect(), prior)
    }

    /// Posterior presence probability of `o` given that `observed` is
    /// **present** (soft evidence over all its non-absent states, handled
    /// by zeroing the absent state). Returns `(posterior, P(observed
    /// present))`.
    pub fn presence_given_present(
        &self,
        o: ObjectId,
        observed: ObjectId,
    ) -> (f64, f64) {
        let ov = self.var(observed).expect("object has a variable");
        // Multiply in an indicator factor killing the Absent state.
        let card = self.vars[ov.0].states.len();
        let mut values = vec![1.0; card];
        values[0] = 0.0;
        let indicator = Factor::new(vec![ov], vec![card], values);
        let mut factors = self.factors.clone();
        factors.push(indicator);
        let target = self.var(o).expect("object has a variable");
        let mut joint =
            crate::elimination::eliminate_all_but(&factors, &[target], self.vars.len());
        let prior = joint.normalize();
        let tcard = self.vars[target.0].states.len();
        let posterior: f64 = (1..tcard).map(|s| joint.at(&[s])).sum();
        (posterior, prior)
    }

    /// Index of a concrete state of `o`'s variable, if present.
    pub fn state_index(&self, o: ObjectId, state: &State) -> Option<usize> {
        let v = self.var(o)?;
        self.vars[v.0].states.iter().position(|s| s == state)
    }

    /// `P(all of the given objects present)` — a joint query requiring a
    /// single elimination run keeping all target variables.
    pub fn joint_presence(&self, objects: &[ObjectId]) -> f64 {
        let targets: Vec<Var> =
            objects.iter().map(|&o| self.var(o).expect("object has a variable")).collect();
        let mut joint =
            crate::elimination::eliminate_all_but(&self.factors, &targets, self.vars.len());
        joint.normalize();
        // Sum over joint assignments where every target is non-absent.
        let cards: Vec<usize> =
            joint.vars().iter().map(|v| self.vars[v.0].states.len()).collect();
        let total: usize = cards.iter().product();
        let mut sum = 0.0;
        let mut assignment = vec![0usize; cards.len()];
        for _ in 0..total {
            if assignment.iter().all(|&s| s != 0) {
                sum += joint.at(&assignment);
            }
            for i in (0..cards.len()).rev() {
                assignment[i] += 1;
                if assignment[i] < cards[i] {
                    break;
                }
                assignment[i] = 0;
            }
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_core::enumerate_worlds;
    use pxml_core::fixtures::{chain, diamond, fig2_instance};

    #[test]
    fn chain_presence_matches_worlds() {
        let pi = chain(3, 0.6);
        let net = Network::compile(&pi);
        let worlds = enumerate_worlds(&pi).unwrap();
        for o in pi.objects() {
            let bn = net.presence_probability(o);
            let direct = worlds.probability_that(|s| s.contains(o));
            assert!((bn - direct).abs() < 1e-9, "object {o:?}: {bn} vs {direct}");
        }
    }

    #[test]
    fn fig2_presence_matches_worlds_even_on_shared_objects() {
        // A1 has two parents — the case the tree-only ε method rejects;
        // variable elimination handles it exactly.
        let pi = fig2_instance();
        let net = Network::compile(&pi);
        let worlds = enumerate_worlds(&pi).unwrap();
        for o in pi.objects() {
            let bn = net.presence_probability(o);
            let direct = worlds.probability_that(|s| s.contains(o));
            assert!(
                (bn - direct).abs() < 1e-9,
                "object {}: {bn} vs {direct}",
                pi.catalog().object_name(o)
            );
        }
    }

    #[test]
    fn diamond_shared_child_marginal() {
        let pi = diamond();
        let net = Network::compile(&pi);
        let c = pi.oid("c").unwrap();
        assert!((net.presence_probability(c) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn leaf_value_marginals_match_worlds() {
        let pi = fig2_instance();
        let net = Network::compile(&pi);
        let worlds = enumerate_worlds(&pi).unwrap();
        let t1 = pi.oid("T1").unwrap();
        let m = net.marginal(t1);
        let states = &net.vars()[net.var(t1).unwrap().0].states;
        for (i, s) in states.iter().enumerate() {
            let direct = match s {
                State::Absent => worlds.probability_that(|w| !w.contains(t1)),
                State::Value(v) => worlds.probability_that(|w| w.value(t1) == Some(v)),
                _ => continue,
            };
            assert!((m[i] - direct).abs() < 1e-9);
        }
    }

    #[test]
    fn joint_presence_matches_worlds() {
        let pi = fig2_instance();
        let net = Network::compile(&pi);
        let worlds = enumerate_worlds(&pi).unwrap();
        let b1 = pi.oid("B1").unwrap();
        let a1 = pi.oid("A1").unwrap();
        let bn = net.joint_presence(&[b1, a1]);
        let direct = worlds.probability_that(|s| s.contains(b1) && s.contains(a1));
        assert!((bn - direct).abs() < 1e-9);
    }

    #[test]
    fn root_is_always_present() {
        let pi = chain(2, 0.1);
        let net = Network::compile(&pi);
        assert!((net.presence_probability(pi.root()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn posterior_given_descendant_present_matches_bayes_rule() {
        let pi = fig2_instance();
        let net = Network::compile(&pi);
        let worlds = enumerate_worlds(&pi).unwrap();
        let b2 = pi.oid("B2").unwrap();
        let a1 = pi.oid("A1").unwrap();
        // P(B2 | A1 present) via the network vs via the worlds.
        let (posterior, prior) = net.presence_given_present(b2, a1);
        let p_a1 = worlds.probability_that(|s| s.contains(a1));
        let p_both = worlds.probability_that(|s| s.contains(a1) && s.contains(b2));
        assert!((prior - p_a1).abs() < 1e-9);
        assert!((posterior - p_both / p_a1).abs() < 1e-9);
    }

    #[test]
    fn marginal_given_exact_state_evidence() {
        let pi = chain(2, 0.5);
        let net = Network::compile(&pi);
        let o1 = pi.oid("o1").unwrap();
        let o2 = pi.oid("o2").unwrap();
        // Evidence: o2 takes value 1 (state index via lookup).
        let s = net
            .state_index(o2, &State::Value(pxml_core::Value::Int(1)))
            .expect("state exists");
        let (m, prior) = net.marginal_given(o1, &[(o2, s)]);
        // P(o2 = 1) = 0.25 · 0.5 = 0.125; given that, o1 is certain.
        assert!((prior - 0.125).abs() < 1e-9);
        assert!((m[0] - 0.0).abs() < 1e-9, "o1 cannot be absent if o2 has a value");
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn evidence_on_shared_child_updates_both_parents() {
        let pi = diamond();
        let net = Network::compile(&pi);
        let a = pi.oid("a").unwrap();
        let c = pi.oid("c").unwrap();
        let worlds = enumerate_worlds(&pi).unwrap();
        let (posterior, _) = net.presence_given_present(a, c);
        // a is always present in the diamond, so the posterior is 1 —
        // but the computation must not produce anything else.
        let direct = worlds.probability_that(|s| s.contains(a) && s.contains(c))
            / worlds.probability_that(|s| s.contains(c));
        assert!((posterior - direct).abs() < 1e-9);
    }
}
