//! Discrete factors (potential tables) over network variables.
//!
//! A factor maps joint assignments of a small set of variables to
//! non-negative reals. Values are stored row-major with the *last*
//! variable varying fastest. Multiplication and summing-out are the two
//! primitives of bucket elimination (Dechter [8]).

/// A network variable (dense index).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub usize);

/// A discrete factor.
#[derive(Clone, Debug, PartialEq)]
pub struct Factor {
    /// The variables, in stride order (last varies fastest).
    vars: Vec<Var>,
    /// Cardinalities, parallel to `vars`.
    cards: Vec<usize>,
    /// `∏ cards` values.
    values: Vec<f64>,
}

impl Factor {
    /// Creates a factor; `values.len()` must equal the product of cards.
    pub fn new(vars: Vec<Var>, cards: Vec<usize>, values: Vec<f64>) -> Self {
        assert_eq!(vars.len(), cards.len());
        let expected: usize = cards.iter().product();
        assert_eq!(values.len(), expected, "value count must match the joint domain size");
        Factor { vars, cards, values }
    }

    /// The constant-1 factor over no variables.
    pub fn unit() -> Self {
        Factor { vars: vec![], cards: vec![], values: vec![1.0] }
    }

    /// The factor's variables.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Cardinality of `v` within this factor.
    pub fn card_of(&self, v: Var) -> Option<usize> {
        self.vars.iter().position(|&x| x == v).map(|i| self.cards[i])
    }

    /// Raw values (row-major, last variable fastest).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The value at a full assignment (parallel to `vars`).
    pub fn at(&self, assignment: &[usize]) -> f64 {
        self.values[self.offset(assignment)]
    }

    fn offset(&self, assignment: &[usize]) -> usize {
        debug_assert_eq!(assignment.len(), self.vars.len());
        let mut off = 0;
        for (i, &a) in assignment.iter().enumerate() {
            debug_assert!(a < self.cards[i]);
            off = off * self.cards[i] + a;
        }
        off
    }

    /// Pointwise product; the result ranges over the union of variables.
    pub fn multiply(&self, other: &Factor) -> Factor {
        // Result variables: self's order, then other's new ones.
        let mut vars = self.vars.clone();
        let mut cards = self.cards.clone();
        for (i, &v) in other.vars.iter().enumerate() {
            if !vars.contains(&v) {
                vars.push(v);
                cards.push(other.cards[i]);
            }
        }
        let total: usize = cards.iter().product();
        let mut values = Vec::with_capacity(total);
        // Positions of result vars inside each operand.
        let self_pos: Vec<Option<usize>> =
            vars.iter().map(|v| self.vars.iter().position(|x| x == v)).collect();
        let other_pos: Vec<Option<usize>> =
            vars.iter().map(|v| other.vars.iter().position(|x| x == v)).collect();
        let mut assignment = vec![0usize; vars.len()];
        for _ in 0..total {
            let a = self.value_at_projected(&assignment, &self_pos);
            let b = other.value_at_projected(&assignment, &other_pos);
            values.push(a * b);
            // Increment mixed-radix counter (last variable fastest).
            for i in (0..vars.len()).rev() {
                assignment[i] += 1;
                if assignment[i] < cards[i] {
                    break;
                }
                assignment[i] = 0;
            }
        }
        Factor { vars, cards, values }
    }

    fn value_at_projected(&self, assignment: &[usize], pos: &[Option<usize>]) -> f64 {
        let mut local = vec![0usize; self.vars.len()];
        for (i, p) in pos.iter().enumerate() {
            if let Some(p) = p {
                local[*p] = assignment[i];
            }
        }
        self.at(&local)
    }

    /// Sums out `v`, removing it from the scope. No-op if absent.
    pub fn sum_out(&self, v: Var) -> Factor {
        let Some(idx) = self.vars.iter().position(|&x| x == v) else {
            return self.clone();
        };
        let mut vars = self.vars.clone();
        let mut cards = self.cards.clone();
        let removed_card = cards.remove(idx);
        vars.remove(idx);
        let _ = removed_card;
        let total: usize = cards.iter().product();
        let mut values = vec![0.0; total];
        let mut assignment = vec![0usize; self.vars.len()];
        for &val in &self.values {
            // The reduced offset folds the assignment, skipping `idx`.
            let mut off = 0;
            for (i, &a) in assignment.iter().enumerate() {
                if i != idx {
                    off = off * self.cards[i] + a;
                }
            }
            values[off] += val;
            for i in (0..self.vars.len()).rev() {
                assignment[i] += 1;
                if assignment[i] < self.cards[i] {
                    break;
                }
                assignment[i] = 0;
            }
        }
        Factor { vars, cards, values }
    }

    /// Fixes `v := state`, removing it from the scope. No-op if absent.
    pub fn restrict(&self, v: Var, state: usize) -> Factor {
        let Some(idx) = self.vars.iter().position(|&x| x == v) else {
            return self.clone();
        };
        let mut vars = self.vars.clone();
        let mut cards = self.cards.clone();
        vars.remove(idx);
        cards.remove(idx);
        let total: usize = cards.iter().product();
        let mut values = Vec::with_capacity(total);
        let mut assignment = vec![0usize; vars.len()];
        for _ in 0..total {
            // Insert `state` at position idx to form the full assignment.
            let mut full = Vec::with_capacity(self.vars.len());
            full.extend_from_slice(&assignment[..idx]);
            full.push(state);
            full.extend_from_slice(&assignment[idx..]);
            values.push(self.at(&full));
            for i in (0..vars.len()).rev() {
                assignment[i] += 1;
                if assignment[i] < cards[i] {
                    break;
                }
                assignment[i] = 0;
            }
        }
        Factor { vars, cards, values }
    }

    /// Total mass (sum of all values).
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Divides all values by the total; returns the prior total.
    pub fn normalize(&mut self) -> f64 {
        let t = self.total();
        if t > 0.0 {
            for v in &mut self.values {
                *v /= t;
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f_ab() -> Factor {
        // P(a, b) over a∈{0,1}, b∈{0,1,2}: values a-major.
        Factor::new(
            vec![Var(0), Var(1)],
            vec![2, 3],
            vec![0.1, 0.2, 0.1, 0.2, 0.3, 0.1],
        )
    }

    #[test]
    fn at_indexes_row_major_last_fastest() {
        let f = f_ab();
        assert_eq!(f.at(&[0, 0]), 0.1);
        assert_eq!(f.at(&[0, 2]), 0.1);
        assert_eq!(f.at(&[1, 1]), 0.3);
    }

    #[test]
    fn sum_out_marginalises() {
        let f = f_ab();
        let fa = f.sum_out(Var(1));
        assert_eq!(fa.vars(), &[Var(0)]);
        assert!((fa.at(&[0]) - 0.4).abs() < 1e-12);
        assert!((fa.at(&[1]) - 0.6).abs() < 1e-12);
        let fb = f.sum_out(Var(0));
        assert!((fb.at(&[0]) - 0.3).abs() < 1e-12);
        assert!((fb.at(&[1]) - 0.5).abs() < 1e-12);
        assert!((fb.at(&[2]) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn multiply_joins_scopes() {
        let fa = Factor::new(vec![Var(0)], vec![2], vec![0.5, 0.5]);
        let fb = Factor::new(vec![Var(1)], vec![2], vec![0.25, 0.75]);
        let joint = fa.multiply(&fb);
        assert_eq!(joint.vars().len(), 2);
        assert!((joint.at(&[0, 1]) - 0.375).abs() < 1e-12);
        assert!((joint.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multiply_with_shared_variable() {
        let f = f_ab();
        let g = Factor::new(vec![Var(1)], vec![3], vec![1.0, 0.0, 2.0]);
        let h = f.multiply(&g);
        assert_eq!(h.vars(), f.vars());
        assert!((h.at(&[0, 0]) - 0.1).abs() < 1e-12);
        assert!((h.at(&[0, 1]) - 0.0).abs() < 1e-12);
        assert!((h.at(&[1, 2]) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn multiply_by_unit_is_identity() {
        let f = f_ab();
        let g = f.multiply(&Factor::unit());
        assert_eq!(g, f);
    }

    #[test]
    fn restrict_fixes_a_state() {
        let f = f_ab();
        let r = f.restrict(Var(0), 1);
        assert_eq!(r.vars(), &[Var(1)]);
        assert!((r.at(&[0]) - 0.2).abs() < 1e-12);
        assert!((r.at(&[2]) - 0.1).abs() < 1e-12);
        let r2 = f.restrict(Var(1), 2);
        assert_eq!(r2.vars(), &[Var(0)]);
        assert!((r2.at(&[0]) - 0.1).abs() < 1e-12);
        assert!((r2.at(&[1]) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn restrict_to_scalar() {
        let f = Factor::new(vec![Var(3)], vec![2], vec![0.3, 0.7]);
        let r = f.restrict(Var(3), 1);
        assert!(r.vars().is_empty());
        assert!((r.total() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn sum_then_multiply_commutes_with_marginal() {
        // (f · g) summed over b == f_b-marginal trick sanity.
        let f = f_ab();
        let g = Factor::new(vec![Var(1)], vec![3], vec![0.2, 0.5, 0.3]);
        let lhs = f.multiply(&g).sum_out(Var(1)).sum_out(Var(0)).total();
        let direct: f64 = (0..2)
            .flat_map(|a| (0..3).map(move |b| (a, b)))
            .map(|(a, b)| f.at(&[a, b]) * g.at(&[b]))
            .sum();
        assert!((lhs - direct).abs() < 1e-12);
    }

    #[test]
    fn normalize_returns_prior_total() {
        let mut f = Factor::new(vec![Var(0)], vec![2], vec![1.0, 3.0]);
        let t = f.normalize();
        assert!((t - 4.0).abs() < 1e-12);
        assert!((f.at(&[1]) - 0.75).abs() < 1e-12);
    }
}
