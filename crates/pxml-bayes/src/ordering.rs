//! Elimination orderings.
//!
//! The cost of bucket elimination is governed by the induced width of the
//! ordering (Section 6: "the complexity depends on the connectivity of
//! the graph and the induced tree width"). Two standard greedy
//! heuristics are provided: min-degree and min-fill.

use std::collections::HashSet;

use crate::factor::{Factor, Var};

/// The moral/interaction graph of a factor set: vertices are variables,
/// with an edge between any two variables sharing a factor.
pub fn interaction_graph(factors: &[Factor], n_vars: usize) -> Vec<HashSet<usize>> {
    let mut adj: Vec<HashSet<usize>> = vec![HashSet::new(); n_vars];
    for f in factors {
        let vars = f.vars();
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                adj[vars[i].0].insert(vars[j].0);
                adj[vars[j].0].insert(vars[i].0);
            }
        }
    }
    adj
}

/// Greedy min-degree ordering over the variables in `eliminate`.
pub fn min_degree_order(factors: &[Factor], n_vars: usize, eliminate: &[Var]) -> Vec<Var> {
    greedy_order(factors, n_vars, eliminate, |adj, v, remaining| {
        adj[v].iter().filter(|x| remaining.contains(x)).count()
    })
}

/// Greedy min-fill ordering over the variables in `eliminate`.
pub fn min_fill_order(factors: &[Factor], n_vars: usize, eliminate: &[Var]) -> Vec<Var> {
    greedy_order(factors, n_vars, eliminate, |adj, v, remaining| {
        // Number of missing edges among v's remaining neighbours.
        let neighbours: Vec<usize> =
            adj[v].iter().copied().filter(|x| remaining.contains(x)).collect();
        let mut fill = 0;
        for i in 0..neighbours.len() {
            for j in (i + 1)..neighbours.len() {
                if !adj[neighbours[i]].contains(&neighbours[j]) {
                    fill += 1;
                }
            }
        }
        fill
    })
}

fn greedy_order(
    factors: &[Factor],
    n_vars: usize,
    eliminate: &[Var],
    score: impl Fn(&[HashSet<usize>], usize, &HashSet<usize>) -> usize,
) -> Vec<Var> {
    let mut adj = interaction_graph(factors, n_vars);
    let mut remaining: HashSet<usize> = eliminate.iter().map(|v| v.0).collect();
    let mut order = Vec::with_capacity(eliminate.len());
    while !remaining.is_empty() {
        // Pick the remaining variable with the best (lowest) score;
        // break ties by index for determinism.
        let &best = remaining
            .iter()
            .min_by_key(|&&v| (score(&adj, v, &remaining), v))
            .expect("non-empty");
        // Connect best's remaining neighbours (simulate elimination).
        let neighbours: Vec<usize> =
            adj[best].iter().copied().filter(|x| remaining.contains(x) && *x != best).collect();
        for i in 0..neighbours.len() {
            for j in (i + 1)..neighbours.len() {
                adj[neighbours[i]].insert(neighbours[j]);
                adj[neighbours[j]].insert(neighbours[i]);
            }
        }
        remaining.remove(&best);
        order.push(Var(best));
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_factors() -> Vec<Factor> {
        // v0 - v1 - v2 (pairwise factors).
        vec![
            Factor::new(vec![Var(0), Var(1)], vec![2, 2], vec![1.0; 4]),
            Factor::new(vec![Var(1), Var(2)], vec![2, 2], vec![1.0; 4]),
        ]
    }

    #[test]
    fn interaction_graph_links_factor_scopes() {
        let adj = interaction_graph(&chain_factors(), 3);
        assert!(adj[0].contains(&1));
        assert!(adj[1].contains(&2));
        assert!(!adj[0].contains(&2));
    }

    #[test]
    fn min_degree_eliminates_leaves_first_on_chains() {
        let order = min_degree_order(&chain_factors(), 3, &[Var(0), Var(1), Var(2)]);
        // v0 and v2 have degree 1, the middle v1 degree 2 — a leaf is
        // eliminated first (ties break towards the lower index).
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], Var(0));
        assert_ne!(order[0], Var(1));
    }

    #[test]
    fn min_fill_on_clique_is_any_order() {
        let f = Factor::new(vec![Var(0), Var(1), Var(2)], vec![2, 2, 2], vec![1.0; 8]);
        let order = min_fill_order(&[f], 3, &[Var(0), Var(1), Var(2)]);
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn ordering_only_covers_requested_vars() {
        let order = min_degree_order(&chain_factors(), 3, &[Var(0), Var(2)]);
        assert_eq!(order.len(), 2);
        assert!(!order.contains(&Var(1)));
    }

    #[test]
    fn ordering_is_deterministic() {
        let a = min_degree_order(&chain_factors(), 3, &[Var(0), Var(1), Var(2)]);
        let b = min_degree_order(&chain_factors(), 3, &[Var(0), Var(1), Var(2)]);
        assert_eq!(a, b);
    }
}
