//! Ablation: explicit-table OPFs vs the §3.2 compact representations
//! (independent-per-child and label-product). Compares the cost of the
//! two operations the query engines lean on — exact-set probability and
//! presence marginals — and the cost of materialisation.
//!
//! `cargo bench -p pxml-bench --bench ablate_opf_repr`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pxml_core::{ChildSet, ChildUniverse, IndependentOpf, Label, ObjectId, Opf};

fn universe(n: u32) -> ChildUniverse {
    let l = Label::from_raw(0);
    ChildUniverse::from_members((0..n).map(|i| (ObjectId::from_raw(i), l)))
}

fn ablate(c: &mut Criterion) {
    let mut group = c.benchmark_group("opf_representations");
    group.sample_size(20);

    for b in [8u32, 12, 16] {
        let u = universe(b);
        let indep = IndependentOpf::new((0..b).map(|i| 0.3 + 0.4 * (i as f64 / b as f64)).collect());
        let compact = Opf::Independent(indep.clone());
        let table = Opf::Table(indep.to_table(&u));
        let probe = ChildSet::from_positions(&u, (0..b).step_by(2));

        group.bench_with_input(BenchmarkId::new("prob_table", b), &table, |bench, opf| {
            bench.iter(|| opf.prob(&probe));
        });
        group.bench_with_input(BenchmarkId::new("prob_compact", b), &compact, |bench, opf| {
            bench.iter(|| opf.prob(&probe));
        });
        group.bench_with_input(
            BenchmarkId::new("marginal_table", b),
            &table,
            |bench, opf| {
                bench.iter(|| opf.marginal_present(1));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("marginal_compact", b),
            &compact,
            |bench, opf| {
                bench.iter(|| opf.marginal_present(1));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("materialise_compact", b),
            &compact,
            |bench, opf| {
                bench.iter(|| opf.to_table(&u).len());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, ablate);
criterion_main!(benches);
