//! Ablation: answering a 1000-query point/exists batch over one §7.1
//! grid instance through
//!
//! * a plain sequential loop over `point_query` / `exists_query`
//!   (recomputes locate + ε per query),
//! * the batch engine with a cold shared cache (cache built during the
//!   measured run — the honest end-to-end comparison),
//! * the batch engine with a warm cache (steady-state serving), and
//! * the cold engine with every available worker thread.
//!
//! §7.1 workloads draw query labels from a 2-letter per-depth alphabet,
//! so a 1000-query batch holds few distinct queries and many shared
//! suffixes — exactly what the whole-query and ε-suffix memos exploit.
//!
//! `cargo bench -p pxml-bench --bench ablate_batch_engine`
//!
//! Besides the per-benchmark lines on stdout, the run writes a
//! machine-readable `BENCH_batch.json` (override the path with
//! `BENCH_BATCH_OUT`) with median-of-5 wall times for the headline
//! modes, so the numbers quoted in EXPERIMENTS.md are regenerable
//! without scraping benchmark output.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};

use pxml_algebra::locate_weak;
use pxml_gen::{generate, query_batch, Labeling, WorkloadConfig};
use pxml_query::{exists_query, point_query, Query, QueryEngine};

fn ablate(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_engine_1000q");
    group.sample_size(10);

    for labeling in [Labeling::SameLabel, Labeling::FullyRandom] {
        let g = generate(&WorkloadConfig::paper(5, 4, labeling, 42));
        let pi = &g.instance;
        let paths = query_batch(&g, 1000, 7);
        assert_eq!(paths.len(), 1000, "all queries accepted");
        // Alternate point (on the first located object) and exists
        // queries over the accepted paths.
        let queries: Vec<Query> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| {
                if i % 2 == 0 {
                    Query::point(p.clone(), locate_weak(pi, p)[0])
                } else {
                    Query::exists(p.clone())
                }
            })
            .collect();
        let tag = labeling.short();

        group.bench_function(BenchmarkId::new("sequential", tag), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for q in &queries {
                    acc += match q {
                        Query::Point { path, object } => point_query(pi, path, *object).unwrap(),
                        Query::Exists { path } => exists_query(pi, path).unwrap(),
                        Query::Chain { .. } => unreachable!("no chains in this workload"),
                    };
                }
                acc
            });
        });

        let engine = QueryEngine::with_threads(pi.clone(), 1);
        group.bench_function(BenchmarkId::new("engine_cold", tag), |b| {
            b.iter(|| {
                engine.clear_cache();
                black_box(engine.run_batch(&queries))
            });
        });

        engine.run_batch(&queries); // prime
        group.bench_function(BenchmarkId::new("engine_warm", tag), |b| {
            b.iter(|| black_box(engine.run_batch(&queries)));
        });

        // Observability overhead against the warm baseline above:
        // `engine_warm` runs with tracing off (the default — one relaxed
        // atomic load per query), the rows below pay for histogram
        // observations (`Timing`) and full trace-record materialisation
        // (`Full`). The <1% disabled-overhead claim in EXPERIMENTS.md is
        // engine_warm (trace plumbing compiled in) vs the seed's
        // engine_warm (no trace code at all); timing/full quantify the
        // cost of switching observability on.
        engine.set_trace_mode(pxml_query::TraceMode::Timing);
        group.bench_function(BenchmarkId::new("engine_warm_timing", tag), |b| {
            b.iter(|| black_box(engine.run_batch(&queries)));
        });
        engine.set_trace_mode(pxml_query::TraceMode::Full);
        engine.set_trace_capacity(queries.len());
        group.bench_function(BenchmarkId::new("engine_warm_full_trace", tag), |b| {
            b.iter(|| {
                let out = black_box(engine.run_batch(&queries));
                engine.take_traces(); // drain, as a scraping consumer would
                out
            });
        });
        engine.set_trace_mode(pxml_query::TraceMode::Off);

        // Resource-governance overhead: the same batch through the
        // governed path with a generous never-hit budget. Warm measures
        // the budget plumbing on the cache-hit fast path (the PR 1
        // regression guard); cold additionally shows the governed
        // evaluator's private ε memo (per-query, no cross-query ε
        // sharing) against the ungoverned shared-memo cold run.
        let spec = pxml_query::BudgetSpec {
            max_steps: Some(u64::MAX),
            timeout: Some(std::time::Duration::from_secs(3600)),
            ..pxml_query::BudgetSpec::default()
        };
        engine.run_batch_governed(&queries, &spec); // prime
        group.bench_function(BenchmarkId::new("engine_warm_governed", tag), |b| {
            b.iter(|| black_box(engine.run_batch_governed(&queries, &spec)));
        });
        group.bench_function(BenchmarkId::new("engine_cold_governed", tag), |b| {
            b.iter(|| {
                engine.clear_cache();
                black_box(engine.run_batch_governed(&queries, &spec))
            });
        });

        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        let parallel = QueryEngine::with_threads(pi.clone(), threads);
        group.bench_function(
            BenchmarkId::new(format!("engine_cold_{threads}t"), tag),
            |b| {
                b.iter(|| {
                    parallel.clear_cache();
                    black_box(parallel.run_batch(&queries))
                });
            },
        );
    }
    group.finish();
}

/// Median wall-clock milliseconds over `reps` calls of `f`.
fn median_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let started = std::time::Instant::now();
            f();
            started.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    samples[samples.len() / 2]
}

/// Re-measures the headline modes with plain `Instant` timings and
/// writes them as JSON. The criterion stand-in prints human-readable
/// numbers but exposes nothing programmatically, so the JSON artefact
/// takes its own (coarser, median-of-5) measurements over the same
/// workloads.
fn write_batch_json() {
    let out =
        std::env::var("BENCH_BATCH_OUT").unwrap_or_else(|_| "BENCH_batch.json".into());
    let reps = 5;
    let mut sections = Vec::new();
    for labeling in [Labeling::SameLabel, Labeling::FullyRandom] {
        let g = generate(&WorkloadConfig::paper(5, 4, labeling, 42));
        let pi = &g.instance;
        let paths = query_batch(&g, 1000, 7);
        let queries: Vec<Query> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| {
                if i % 2 == 0 {
                    Query::point(p.clone(), locate_weak(pi, p)[0])
                } else {
                    Query::exists(p.clone())
                }
            })
            .collect();

        let sequential = median_ms(reps, || {
            let mut acc = 0.0;
            for q in &queries {
                acc += match q {
                    Query::Point { path, object } => point_query(pi, path, *object).unwrap(),
                    Query::Exists { path } => exists_query(pi, path).unwrap(),
                    Query::Chain { .. } => unreachable!("no chains in this workload"),
                };
            }
            black_box(acc);
        });

        let engine = QueryEngine::with_threads(pi.clone(), 1);
        let cold = median_ms(reps, || {
            engine.clear_cache();
            black_box(engine.run_batch(&queries));
        });
        engine.run_batch(&queries); // prime
        let warm = median_ms(reps, || {
            black_box(engine.run_batch(&queries));
        });

        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        let parallel = QueryEngine::with_threads(pi.clone(), threads);
        let cold_parallel = median_ms(reps, || {
            parallel.clear_cache();
            black_box(parallel.run_batch(&queries));
        });

        sections.push(format!(
            "  \"{}\": {{\n    \"sequential_ms\": {sequential:.3},\n    \"engine_cold_ms\": {cold:.3},\n    \"engine_warm_ms\": {warm:.3},\n    \"engine_cold_parallel_ms\": {cold_parallel:.3},\n    \"threads\": {threads}\n  }}",
            labeling.short()
        ));
    }
    let json = format!(
        "{{\n  \"workload\": {{\n    \"depth\": 5, \"branching\": 4, \"queries\": 1000, \"repeats\": {reps}\n  }},\n{}\n}}\n",
        sections.join(",\n")
    );
    std::fs::write(&out, &json).expect("write BENCH_batch.json");
    println!("wrote {out}");
}

criterion_group!(benches, ablate);

fn main() {
    benches();
    write_batch_json();
}
