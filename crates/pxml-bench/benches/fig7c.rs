//! Figure 7(c): total query time of selection (copy + locate + ℘ update +
//! write; the write dominates, per §7.2).
//!
//! `cargo bench -p pxml-bench --bench fig7c`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pxml_algebra::select_timed;
use pxml_gen::{generate, selection_batch, Labeling, WorkloadConfig};
use pxml_storage::write_text_file;

fn fig7c(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7c_selection_total");
    group.sample_size(10);
    let scratch = std::env::temp_dir().join("pxml-fig7c");
    std::fs::create_dir_all(&scratch).expect("scratch dir");

    for labeling in [Labeling::SameLabel, Labeling::FullyRandom] {
        for (depth, branching) in [(4usize, 2usize), (6, 2), (8, 2), (4, 4), (5, 4), (3, 8)] {
            let config = WorkloadConfig::paper(depth, branching, labeling, 7);
            let g = generate(&config);
            let selections = selection_batch(&g, 4, 13);
            if selections.is_empty() {
                continue;
            }
            let id = format!("{}_b{}_d{}_n{}", labeling.short(), branching, depth, config.object_count());
            group.bench_with_input(BenchmarkId::from_parameter(id), &g, |b, g| {
                let mut qi = 0usize;
                b.iter(|| {
                    let (cond, _) = &selections[qi % selections.len()];
                    qi += 1;
                    let (selected, _times) =
                        select_timed(&g.instance, cond).expect("selection succeeds");
                    let path = scratch.join("out.pxml");
                    write_text_file(&selected.instance, &path).expect("writable");
                    selected.instance.object_count()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig7c);
criterion_main!(benches);
