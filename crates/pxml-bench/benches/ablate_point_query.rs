//! Ablation: the three engines for `P(o ∈ p)` — the §6.2 ε propagation,
//! Bayesian-network variable elimination, and the naive possible-worlds
//! enumeration — on growing chain instances. The enumeration engine
//! explodes exponentially; ε and VE stay linear, which is precisely why
//! §6 exists.
//!
//! `cargo bench -p pxml-bench --bench ablate_point_query`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pxml_algebra::PathExpr;
use pxml_bayes::Network;
use pxml_core::enumerate_worlds;
use pxml_core::fixtures::chain;
use pxml_query::point_query;

fn ablate(c: &mut Criterion) {
    let mut group = c.benchmark_group("point_query_engines");
    group.sample_size(10);

    for n in [4usize, 8, 12, 16] {
        let pi = chain(n, 0.7);
        let tail = pi.oid(&format!("o{n}")).unwrap();
        let next = pi.lid("next").unwrap();
        let p = PathExpr::new(pi.root(), vec![next; n]);

        group.bench_with_input(BenchmarkId::new("epsilon", n), &pi, |b, pi| {
            b.iter(|| point_query(pi, &p, tail).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("bayes_ve", n), &pi, |b, pi| {
            b.iter(|| {
                let net = Network::compile(pi);
                net.presence_probability(tail)
            });
        });
        // World enumeration is exponential in n; keep it to sizes that
        // finish (2^(n+1) worlds with values).
        if n <= 12 {
            group.bench_with_input(BenchmarkId::new("naive_worlds", n), &pi, |b, pi| {
                b.iter(|| {
                    let worlds = enumerate_worlds(pi).unwrap();
                    worlds.probability_that(|s| s.contains(tail))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, ablate);
criterion_main!(benches);
