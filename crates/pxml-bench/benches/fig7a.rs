//! Figure 7(a): total query time of ancestor projection (copy + locate +
//! structure update + ℘ update + write), Criterion edition.
//!
//! `cargo bench -p pxml-bench --bench fig7a`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pxml_algebra::ancestor_project_timed;
use pxml_gen::{generate, query_batch, Labeling, WorkloadConfig};
use pxml_storage::write_text_file;

fn fig7a(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7a_projection_total");
    group.sample_size(10);
    let scratch = std::env::temp_dir().join("pxml-fig7a");
    std::fs::create_dir_all(&scratch).expect("scratch dir");

    for labeling in [Labeling::SameLabel, Labeling::FullyRandom] {
        for (depth, branching) in [(4usize, 2usize), (6, 2), (8, 2), (4, 4), (5, 4), (3, 8)] {
            let config = WorkloadConfig::paper(depth, branching, labeling, 7);
            let g = generate(&config);
            let queries = query_batch(&g, 4, 11);
            if queries.is_empty() {
                continue;
            }
            let id = format!("{}_b{}_d{}_n{}", labeling.short(), branching, depth, config.object_count());
            group.bench_with_input(BenchmarkId::from_parameter(id), &g, |b, g| {
                let mut qi = 0usize;
                b.iter(|| {
                    let q = &queries[qi % queries.len()];
                    qi += 1;
                    let (result, _times) =
                        ancestor_project_timed(&g.instance, q).expect("tree accepted");
                    let path = scratch.join("out.pxml");
                    write_text_file(&result, &path).expect("writable");
                    result.object_count()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig7a);
criterion_main!(benches);
