//! Ablation: the `u64`-bitmask child-set representation vs the sorted
//! sparse fallback. The paper's workloads (b ≤ 8) always hit the mask
//! path; this bench quantifies what that buys for the set operations the
//! projection algorithm performs per OPF entry.
//!
//! `cargo bench -p pxml-bench --bench ablate_childset`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pxml_core::{ChildSet, ChildUniverse, Label, ObjectId};

fn universe(n: u32) -> ChildUniverse {
    let l = Label::from_raw(0);
    ChildUniverse::from_members((0..n).map(|i| (ObjectId::from_raw(i), l)))
}

fn ablate(c: &mut Criterion) {
    let mut group = c.benchmark_group("childset_representations");
    group.sample_size(20);

    // 32 members ⇒ mask; 96 members ⇒ sparse. Sets hold every other one.
    for (name, n) in [("mask", 32u32), ("sparse", 96)] {
        let u = universe(n);
        let a = ChildSet::from_positions(&u, (0..n).step_by(2));
        let b = ChildSet::from_positions(&u, (0..n).step_by(3));

        group.bench_with_input(BenchmarkId::new("union", name), &(a.clone(), b.clone()), |bench, (a, b)| {
            bench.iter(|| a.union(b).len());
        });
        group.bench_with_input(
            BenchmarkId::new("intersect", name),
            &(a.clone(), b.clone()),
            |bench, (a, b)| {
                bench.iter(|| a.intersect(b).len());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("subset_check", name),
            &(a.clone(), b.clone()),
            |bench, (a, b)| {
                bench.iter(|| b.is_subset_of(a));
            },
        );
        // Subset enumeration drives the projection inner loop; bound the
        // enumerated set to 12 members so both representations finish.
        let small = ChildSet::from_positions(&u, 0..12);
        group.bench_with_input(BenchmarkId::new("subsets_2p12", name), &small, |bench, s| {
            bench.iter(|| s.subsets().count());
        });
    }
    group.finish();
}

criterion_group!(benches, ablate);
criterion_main!(benches);
