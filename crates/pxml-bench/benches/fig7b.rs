//! Figure 7(b): the update-℘ phase of ancestor projection, isolated via
//! `iter_custom` so only the local-interpretation update is timed.
//!
//! `cargo bench -p pxml-bench --bench fig7b`

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pxml_algebra::ancestor_project_timed;
use pxml_gen::{generate, query_batch, Labeling, WorkloadConfig};

fn fig7b(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7b_projection_update_interp");
    group.sample_size(10);

    for labeling in [Labeling::SameLabel, Labeling::FullyRandom] {
        for (depth, branching) in [(4usize, 2usize), (6, 2), (8, 2), (4, 4), (5, 4), (3, 8)] {
            let config = WorkloadConfig::paper(depth, branching, labeling, 7);
            let g = generate(&config);
            let queries = query_batch(&g, 4, 11);
            if queries.is_empty() {
                continue;
            }
            let id = format!("{}_b{}_d{}_n{}", labeling.short(), branching, depth, config.object_count());
            group.bench_with_input(BenchmarkId::from_parameter(id), &g, |b, g| {
                let mut qi = 0usize;
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let q = &queries[qi % queries.len()];
                        qi += 1;
                        let (_result, times) =
                            ancestor_project_timed(&g.instance, q).expect("tree accepted");
                        total += times.update_interp;
                    }
                    total
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig7b);
criterion_main!(benches);
