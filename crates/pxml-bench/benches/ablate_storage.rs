//! Ablation: text vs binary serialisation — the write phase that
//! dominates Figure 7(c)'s totals. Measures encode time and output size
//! for generated instances of growing scale.
//!
//! `cargo bench -p pxml-bench --bench ablate_storage`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pxml_gen::{generate, Labeling, WorkloadConfig};
use pxml_storage::{from_binary, from_text, to_binary, to_text};

fn ablate(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_codecs");
    group.sample_size(10);

    for (depth, branching) in [(4usize, 2usize), (6, 2), (4, 4)] {
        let config = WorkloadConfig::paper(depth, branching, Labeling::SameLabel, 3);
        let g = generate(&config);
        let n = config.object_count();
        let text = to_text(&g.instance);
        let bin = to_binary(&g.instance).expect("benchmark instances encode");

        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode_text", n), &g, |b, g| {
            b.iter(|| to_text(&g.instance).len());
        });
        group.throughput(Throughput::Bytes(bin.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode_binary", n), &g, |b, g| {
            b.iter(|| to_binary(&g.instance).expect("benchmark instances encode").len());
        });
        group.bench_with_input(BenchmarkId::new("decode_text", n), &text, |b, text| {
            b.iter(|| from_text(text).expect("round trip").object_count());
        });
        group.bench_with_input(BenchmarkId::new("decode_binary", n), &bin, |b, bin| {
            b.iter(|| from_binary(bin).expect("round trip").object_count());
        });
    }
    group.finish();
}

criterion_group!(benches, ablate);
criterion_main!(benches);
