//! Measures what the flat arena/CSR layout buys §6.1 marginalisation
//! over the legacy map-of-maps recursion and writes the numbers to
//! `BENCH_arena.json`.
//!
//! Usage:
//! ```text
//! bench_arena [--out FILE] [--reps N] [--no-assert]
//! ```
//!
//! Two §7.1 same-label instances — depth 8 × branching 3 (9 841
//! objects, ~10⁴) and depth 8 × branching 4 (87 381 objects, ~10⁵) —
//! each answered along every root-anchored label-path prefix (depth 1
//! through 8, so the deepest query marginalises the entire tree). Three
//! phases per scale:
//!
//! * **cold marginalisation** — the whole exists-pool answered from
//!   scratch, legacy [`exists_query`] recursion vs
//!   [`ArenaInstance::exists_flat`] tight loops; median wall over
//!   `--reps` repetitions. Every single answer must be **bit-equal**
//!   across the two paths (the checksum in the JSON is the shared sum).
//!   The headline: at the 10⁵ scale the arena must be ≥ 2× faster
//!   (asserted unless `--no-assert`).
//! * **first query** — lowering cost up front: one cold full-depth
//!   exists through a fresh arena-routed [`QueryEngine`] (construction
//!   *includes* `lower_unchecked`) vs one legacy call; plus the
//!   lowering wall itself, reported separately.
//! * **warm query** — p50 of re-asking the full-depth exists on the
//!   warm engine (result-cache hits; answers stay bit-equal).

use std::time::Instant;

use pxml_algebra::PathExpr;
use pxml_core::{ArenaInstance, Label, ProbInstance};
use pxml_gen::{generate, Labeling, WorkloadConfig};
use pxml_query::{exists_query, Query, QueryEngine};

/// The root-anchored label path walked off the first potential child at
/// every level (with same-label workloads this is *the* label path).
fn walk_labels(pi: &ProbInstance, depth: usize) -> Vec<Label> {
    let mut labels = Vec::with_capacity(depth);
    let mut cur = pi.root();
    while labels.len() < depth {
        let Some((_, child, l)) =
            pi.weak().node(cur).and_then(|n| n.universe().iter().next())
        else {
            break;
        };
        labels.push(l);
        cur = child;
    }
    labels
}

fn median_ms(mut walls: Vec<f64>) -> f64 {
    walls.sort_by(f64::total_cmp);
    walls[walls.len() / 2]
}

fn p50_us(mut nanos: Vec<u64>) -> f64 {
    nanos.sort_unstable();
    nanos[nanos.len() / 2] as f64 / 1e3
}

struct ScaleResult {
    objects: usize,
    branching: usize,
    lower_ms: f64,
    cold_legacy_ms: f64,
    cold_arena_ms: f64,
    checksum: f64,
    first_legacy_ms: f64,
    first_arena_ms: f64,
    warm_p50_us: f64,
}

impl ScaleResult {
    fn speedup(&self) -> f64 {
        self.cold_legacy_ms / self.cold_arena_ms
    }
}

fn run_scale(branching: usize, reps: usize) -> ScaleResult {
    const DEPTH: usize = 8;
    let g = generate(&WorkloadConfig::paper(DEPTH, branching, Labeling::SameLabel, 42));
    let pi = &g.instance;
    let labels = walk_labels(pi, DEPTH);
    assert_eq!(labels.len(), DEPTH, "workload shallower than configured");
    let prefixes: Vec<&[Label]> = (1..=labels.len()).map(|d| &labels[..d]).collect();
    let paths: Vec<PathExpr> =
        prefixes.iter().map(|p| PathExpr::new(pi.root(), p.iter().copied())).collect();

    // Lowering cost, then the arena every cold reading reuses (the
    // engine pays this same cost once at construction).
    let t = Instant::now();
    let arena = ArenaInstance::lower_unchecked(pi);
    let lower_ms = t.elapsed().as_secs_f64() * 1e3;

    // Cold marginalisation: the full prefix pool per repetition, every
    // answer compared bit-for-bit across the two paths.
    let mut legacy_walls = Vec::with_capacity(reps);
    let mut arena_walls = Vec::with_capacity(reps);
    let mut checksum = 0.0;
    for rep in 0..reps {
        let t = Instant::now();
        let legacy: Vec<f64> =
            paths.iter().map(|p| exists_query(pi, p).expect("legacy answers")).collect();
        legacy_walls.push(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        let flat: Vec<f64> =
            prefixes.iter().map(|p| arena.exists_flat(p).expect("arena answers")).collect();
        arena_walls.push(t.elapsed().as_secs_f64() * 1e3);
        for (d, (a, b)) in legacy.iter().zip(&flat).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "depth-{} answer diverged: legacy {a} vs arena {b}",
                d + 1
            );
        }
        if rep == 0 {
            checksum = legacy.iter().sum();
        }
    }

    // First query: lowering + cold answer through the engine vs one
    // legacy call, full depth.
    let deep = paths.last().expect("at least one prefix").clone();
    let t = Instant::now();
    let first_legacy = exists_query(pi, &deep).expect("legacy answers");
    let first_legacy_ms = t.elapsed().as_secs_f64() * 1e3;
    let cloned = pi.clone();
    let t = Instant::now();
    let engine = QueryEngine::with_threads(cloned, 1);
    let first_arena = engine.run(&Query::exists(deep.clone())).expect("engine answers");
    let first_arena_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(first_legacy.to_bits(), first_arena.to_bits(), "first-query answers diverged");

    // Warm query: the engine re-asking the deep exists (result hits).
    let warm_nanos: Vec<u64> = (0..64)
        .map(|_| {
            let t = Instant::now();
            let v = engine.run(&Query::exists(deep.clone())).expect("engine answers");
            assert_eq!(v.to_bits(), first_legacy.to_bits(), "warm answer diverged");
            t.elapsed().as_nanos() as u64
        })
        .collect();

    ScaleResult {
        objects: pi.object_count(),
        branching,
        lower_ms,
        cold_legacy_ms: median_ms(legacy_walls),
        cold_arena_ms: median_ms(arena_walls),
        checksum,
        first_legacy_ms,
        first_arena_ms,
        warm_p50_us: p50_us(warm_nanos),
    }
}

fn json_scale(r: &ScaleResult) -> String {
    format!(
        "    {{\n      \"objects\": {},\n      \"depth\": 8,\n      \"branching\": {},\n      \"lower_ms\": {:.3},\n      \"cold\": {{\n        \"legacy_ms\": {:.3},\n        \"arena_ms\": {:.3},\n        \"speedup\": {:.2},\n        \"checksum\": {:.9},\n        \"bit_equal\": true\n      }},\n      \"first_query\": {{\n        \"legacy_ms\": {:.3},\n        \"arena_ms\": {:.3}\n      }},\n      \"warm_query\": {{\n        \"p50_us\": {:.3}\n      }}\n    }}",
        r.objects,
        r.branching,
        r.lower_ms,
        r.cold_legacy_ms,
        r.cold_arena_ms,
        r.speedup(),
        r.checksum,
        r.first_legacy_ms,
        r.first_arena_ms,
        r.warm_p50_us,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };
    let out = get("--out").unwrap_or_else(|| "BENCH_arena.json".into());
    let reps: usize = get("--reps").and_then(|v| v.parse().ok()).unwrap_or(5);
    let assert_speedup = !args.iter().any(|a| a == "--no-assert");

    let mut scales = Vec::new();
    for branching in [3usize, 4] {
        let r = run_scale(branching, reps);
        eprintln!(
            "bench_arena: {} objects: cold {:.2} -> {:.2} ms ({:.2}x), lower {:.2} ms, first {:.2} -> {:.2} ms, warm p50 {:.1} us",
            r.objects,
            r.cold_legacy_ms,
            r.cold_arena_ms,
            r.speedup(),
            r.lower_ms,
            r.first_legacy_ms,
            r.first_arena_ms,
            r.warm_p50_us,
        );
        scales.push(r);
    }

    let big = scales.last().expect("two scales ran");
    if assert_speedup {
        assert!(
            big.speedup() >= 2.0,
            "cold marginalisation at {} objects is only {:.2}x faster on the arena (need >= 2x)",
            big.objects,
            big.speedup()
        );
    }

    let json = format!(
        "{{\n  \"workload\": {{ \"labeling\": \"sl\", \"depth\": 8, \"reps\": {reps} }},\n  \"scales\": [\n{}\n  ]\n}}\n",
        scales.iter().map(json_scale).collect::<Vec<_>>().join(",\n")
    );
    std::fs::write(&out, &json).expect("write BENCH_arena.json");
    println!("wrote {out}");
}
