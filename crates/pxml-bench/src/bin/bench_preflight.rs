//! Measures what the static pre-flight pass buys the batch engine and
//! writes the numbers to `BENCH_preflight.json`.
//!
//! Usage:
//! ```text
//! bench_preflight [--out FILE] [--queries N] [--repeats R]
//! ```
//!
//! The workload is a §7.1 grid instance under fully-random labelling —
//! located sets are often singletons there, so the `POINT` →
//! `EXISTS` plan normalisation actually fires. Two phases per mode:
//!
//! * **Warm-up pass** — every query in *canonical* form (`EXISTS` over
//!   each structural-summary label path, plus the dead paths and
//!   never-located point queries from `pxml_gen::analysis_batch`).
//! * **Warm passes** — the same workload, but each satisfiable
//!   singleton path arrives as its equivalent `POINT` twin:
//!   syntactically distinct, canonically identical.
//!
//! The headline number is the *warm hit-rate delta*: plan
//! normalisation maps a singleton `POINT` and its `EXISTS` twin onto
//! one `MarginalCache` key, so the pre-flighted engine answers the
//! variant forms from the cache it warmed in pass 0, while the plain
//! engine misses each twin and re-evaluates it. Both modes answer the
//! identical query stream; a checksum asserts the answers agree.

use std::time::Instant;

use pxml_algebra::PathExpr;
use pxml_core::StructuralSummary;
use pxml_gen::{analysis_batch, generate, Labeling, WorkloadConfig};
use pxml_query::{Query, QueryEngine};

struct ModeResult {
    pass_ms: Vec<f64>,
    result_hits: u64,
    result_misses: u64,
    warm_hits: u64,
    warm_misses: u64,
    preflight_zeros: u64,
    preflight_rewrites: u64,
    footprint_bytes: u64,
    checksum: f64,
}

fn rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// Pass 0 answers `warmup`; passes `1..repeats` answer `warm`. Hits
/// and misses counted after pass 0 are the warm-pass numbers.
fn run_mode(
    pi: &pxml_core::ProbInstance,
    warmup: &[Query],
    warm: &[Query],
    repeats: usize,
    preflight: bool,
) -> ModeResult {
    let engine = QueryEngine::new(pi.clone());
    engine.set_preflight(preflight);
    let mut pass_ms = Vec::with_capacity(repeats);
    let mut checksum = 0.0;
    let mut cold_hits = 0;
    let mut cold_misses = 0;
    for pass in 0..repeats {
        let batch = if pass == 0 { warmup } else { warm };
        let started = Instant::now();
        for r in engine.run_batch(batch) {
            checksum += r.unwrap_or(0.0);
        }
        pass_ms.push(started.elapsed().as_secs_f64() * 1e3);
        if pass == 0 {
            let s = engine.stats();
            cold_hits = s.result_hits;
            cold_misses = s.result_misses;
        }
    }
    let s = engine.stats();
    ModeResult {
        pass_ms,
        result_hits: s.result_hits,
        result_misses: s.result_misses,
        warm_hits: s.result_hits - cold_hits,
        warm_misses: s.result_misses - cold_misses,
        preflight_zeros: s.preflight_zeros,
        preflight_rewrites: s.preflight_rewrites,
        footprint_bytes: engine.cache_bytes(),
        checksum,
    }
}

fn json_mode(name: &str, m: &ModeResult) -> String {
    let passes: Vec<String> = m.pass_ms.iter().map(|ms| format!("{ms:.3}")).collect();
    format!(
        "  \"{name}\": {{\n    \"pass_ms\": [{}],\n    \"result_hits\": {},\n    \"result_misses\": {},\n    \"overall_hit_rate\": {:.6},\n    \"warm_hit_rate\": {:.6},\n    \"preflight_zeros\": {},\n    \"preflight_rewrites\": {},\n    \"footprint_bytes\": {},\n    \"checksum\": {:.9}\n  }}",
        passes.join(", "),
        m.result_hits,
        m.result_misses,
        rate(m.result_hits, m.result_misses),
        rate(m.warm_hits, m.warm_misses),
        m.preflight_zeros,
        m.preflight_rewrites,
        m.footprint_bytes,
        m.checksum,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };
    let out = get("--out").unwrap_or_else(|| "BENCH_preflight.json".into());
    let count: usize = get("--queries").and_then(|v| v.parse().ok()).unwrap_or(1000);
    let repeats: usize = get("--repeats").and_then(|v| v.parse().ok()).unwrap_or(3);
    assert!(repeats >= 2, "--repeats must be >= 2 (one warm-up pass plus warm passes)");

    // Depth 8 over branching 2 with fully-random labels: located sets
    // are frequently singletons, so the POINT → EXISTS canonicalisation
    // has real work to do.
    let g = generate(&WorkloadConfig::paper(8, 2, Labeling::FullyRandom, 42));
    let pi = &g.instance;
    let summary = StructuralSummary::build(pi);
    let root = pi.root();

    let mut warmup: Vec<Query> = Vec::new();
    let mut warm: Vec<Query> = Vec::new();
    let mut twins = 0usize;
    // Every summary label path in canonical EXISTS form for the
    // warm-up; singleton paths come back as POINT twins on the warm
    // passes.
    for labels in summary.label_paths(8, count) {
        let path = PathExpr::new(root, labels);
        let located = pxml_algebra::locate_weak(pi, &path);
        warmup.push(Query::exists(path.clone()));
        if located.len() == 1 {
            warm.push(Query::point(path, located[0]));
            twins += 1;
        } else {
            warm.push(Query::exists(path));
        }
    }
    // Mixed noise from the generator — dead paths and never-located
    // point queries exercise the zero short-circuit — identical in
    // both phases.
    for a in analysis_batch(&g, count.saturating_sub(warmup.len()), 7) {
        let q = match a.target {
            Some(t) => Query::point(a.path, t),
            None => Query::exists(a.path),
        };
        warmup.push(q.clone());
        warm.push(q);
    }
    eprintln!(
        "bench_preflight: {} queries ({twins} point/exists twins) x 1 warm-up + {} warm passes over {} objects",
        warmup.len(),
        repeats - 1,
        pi.object_count()
    );

    let off = run_mode(pi, &warmup, &warm, repeats, false);
    let on = run_mode(pi, &warmup, &warm, repeats, true);
    assert!(
        (off.checksum - on.checksum).abs() < 1e-6,
        "pre-flight changed answers: {} vs {}",
        off.checksum,
        on.checksum
    );

    let delta = rate(on.warm_hits, on.warm_misses) - rate(off.warm_hits, off.warm_misses);
    let json = format!(
        "{{\n  \"workload\": {{\n    \"labeling\": \"fr\", \"depth\": 8, \"branching\": 2,\n    \"queries\": {}, \"point_exists_twins\": {twins}, \"repeats\": {repeats}, \"objects\": {}\n  }},\n{},\n{},\n  \"warm_hit_rate_delta\": {delta:.6}\n}}\n",
        warmup.len(),
        pi.object_count(),
        json_mode("preflight_off", &off),
        json_mode("preflight_on", &on),
    );
    std::fs::write(&out, &json).expect("write BENCH_preflight.json");
    eprintln!(
        "warm hit rate: off {:.1}% -> on {:.1}% (delta {:+.1} pp); zeros {}, rewrites {}, footprint {} -> {} B",
        100.0 * rate(off.warm_hits, off.warm_misses),
        100.0 * rate(on.warm_hits, on.warm_misses),
        100.0 * delta,
        on.preflight_zeros,
        on.preflight_rewrites,
        off.footprint_bytes,
        on.footprint_bytes,
    );
    println!("wrote {out}");
}
