//! Concurrent load test for the `pxml serve` daemon, run fully
//! in-process, writing the numbers to `BENCH_serve.json`.
//!
//! Usage:
//! ```text
//! bench_serve [--out FILE] [--requests N] [--clients N] [--mutate-per-mille N]
//! ```
//!
//! Three phases against one daemon over a §7.1 instance (depth 5,
//! branching 2, same-label):
//!
//! 1. **Correctness** — `--requests` query-only requests split across
//!    `--clients` persistent connections; every wire answer must be
//!    byte-equal to an ungoverned local [`QueryEngine`] over the same
//!    instance file (checksum-equal by construction).
//! 2. **Mixed throughput** — each client drives its own deterministic
//!    [`serve_workload`] stream (`--mutate-per-mille`‰ writes routed
//!    through governed dirty-set invalidation); every response must be
//!    status ok. Headlines: requests/s, p50/p99 latency.
//! 3. **Admission hammer** — a direct [`MarginalCache`] loop hurling
//!    oversized entries at a warm ceiling-governed cache. Before the
//!    thrash fix every put evicted the shard; the headline
//!    `spurious_evictions` must be 0 (and every put a counted refusal).

use std::sync::Arc;
use std::time::Instant;

use pxml_cli::protocol::{Request, RequestOptions, Status};
use pxml_cli::serve::{Client, Server, ServeConfig, Target};
use pxml_cli::translate_query;
use pxml_gen::{generate, serve_workload, Labeling, ServeRequest, WorkloadConfig};
use pxml_query::{MarginalCache, QueryEngine};

fn percentile_us(nanos: &mut [u64], p: f64) -> f64 {
    if nanos.is_empty() {
        return 0.0;
    }
    nanos.sort_unstable();
    let idx = ((nanos.len() - 1) as f64 * p).round() as usize;
    nanos[idx] as f64 / 1e3
}

fn wire_query(line: &str) -> Request {
    Request::Query {
        instance: "serve_bench".into(),
        options: RequestOptions::default(),
        query: line.into(),
    }
}

/// Splits `stream` across `clients` threads, each on its own persistent
/// connection; returns `(line, body)` per request plus latencies.
fn drive(
    target: &Target,
    stream: Vec<ServeRequest>,
    clients: usize,
) -> (Vec<(String, String)>, Vec<u64>, usize) {
    let chunk = stream.len().div_ceil(clients);
    let chunks: Vec<Vec<ServeRequest>> =
        stream.chunks(chunk.max(1)).map(|c| c.to_vec()).collect();
    let workers: Vec<_> = chunks
        .into_iter()
        .map(|reqs| {
            let target = target.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&target).expect("connect");
                let mut answers = Vec::with_capacity(reqs.len());
                let mut latencies = Vec::with_capacity(reqs.len());
                let mut mutations = 0usize;
                for req in reqs {
                    let (line, wire) = match &req {
                        ServeRequest::Query(q) => (q.clone(), wire_query(q)),
                        ServeRequest::Mutate(ops) => {
                            mutations += 1;
                            (
                                ops.clone(),
                                Request::Mutate {
                                    instance: "serve_bench".into(),
                                    options: RequestOptions::default(),
                                    ops: ops.clone(),
                                },
                            )
                        }
                    };
                    let t = Instant::now();
                    let (status, body) = client.roundtrip(&wire).expect("roundtrip");
                    latencies.push(t.elapsed().as_nanos() as u64);
                    assert_eq!(status, Status::Ok, "{line:?} -> {body:?}");
                    if matches!(req, ServeRequest::Query(_)) {
                        answers.push((line, body));
                    }
                }
                (answers, latencies, mutations)
            })
        })
        .collect();
    let mut answers = Vec::new();
    let mut latencies = Vec::new();
    let mut mutations = 0;
    for w in workers {
        let (a, l, m) = w.join().expect("client thread panicked");
        answers.extend(a);
        latencies.extend(l);
        mutations += m;
    }
    (answers, latencies, mutations)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };
    let out = get("--out").unwrap_or_else(|| "BENCH_serve.json".into());
    let requests: usize = get("--requests").and_then(|v| v.parse().ok()).unwrap_or(2000);
    let clients: usize = get("--clients").and_then(|v| v.parse().ok()).unwrap_or(16);
    let mpm: u32 = get("--mutate-per-mille").and_then(|v| v.parse().ok()).unwrap_or(100);

    let g = generate(&WorkloadConfig::paper(5, 2, Labeling::SameLabel, 42));
    let dir = std::env::temp_dir().join("pxml-bench-serve");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("serve_bench.pxmlb");
    pxml_storage::write_binary_file(&g.instance, &path).expect("write instance");
    eprintln!(
        "bench_serve: {} objects, {requests} requests/phase, {clients} clients, {mpm}permille writes",
        g.instance.object_count()
    );

    let handle =
        Server::start(ServeConfig::ephemeral(vec![path.clone()])).expect("server starts");
    let port = handle.port().expect("ephemeral port");
    let target = Target::Tcp(format!("127.0.0.1:{port}"));

    // Phase 1: correctness — concurrent answers vs the local engine.
    let queries = serve_workload(&g, requests, 0, 7);
    let phase1_n = queries.len();
    let started = Instant::now();
    let (answers, mut lat1, _) = drive(&target, queries, clients);
    let phase1_ms = started.elapsed().as_secs_f64() * 1e3;
    let local = QueryEngine::new(g.instance.clone());
    let mut wire_checksum = 0.0;
    let mut local_checksum = 0.0;
    for (line, body) in &answers {
        let q = translate_query(local.instance(), line).expect("query resolves");
        let expected = format!("{:.6}", local.run(&q).expect("local run"));
        assert_eq!(body, &expected, "divergent answer for {line:?}");
        wire_checksum += body.parse::<f64>().expect("numeric answer");
        local_checksum += expected.parse::<f64>().expect("numeric answer");
    }
    assert!(
        (wire_checksum - local_checksum).abs() < 1e-9,
        "checksums diverge: wire {wire_checksum} vs local {local_checksum}"
    );
    eprintln!(
        "phase 1: {phase1_n} concurrent answers checksum-equal to the batch engine ({:.6})",
        wire_checksum
    );

    // Phase 2: mixed read/write throughput, one stream per client.
    let per_client = requests.div_ceil(clients);
    let streams: Vec<ServeRequest> = (0..clients as u64)
        .flat_map(|c| serve_workload(&g, per_client, mpm, 1000 + c))
        .collect();
    let phase2_n = streams.len();
    let started = Instant::now();
    let (_, mut lat2, mutations) = drive(&target, streams, clients);
    let phase2_ms = started.elapsed().as_secs_f64() * 1e3;
    let rps = phase2_n as f64 / (phase2_ms / 1e3);
    eprintln!(
        "phase 2: {phase2_n} mixed requests ({mutations} mutations) in {phase2_ms:.0} ms = {rps:.0} req/s"
    );
    handle.shutdown_and_join().expect("daemon drains");

    // Phase 3: the admission-thrash hammer on a bare cache.
    let cache = MarginalCache::new();
    cache.set_max_bytes(2048);
    for i in 0..8u32 {
        cache.put_link(i, 0, 0.5);
    }
    let warm_bytes = cache.approx_bytes();
    let oversized: Arc<Vec<Vec<pxml_core::ObjectId>>> =
        Arc::new(vec![(0..1000).map(pxml_core::ObjectId::from_raw).collect()]);
    let hammer_puts = 10_000u64;
    let started = Instant::now();
    for i in 0..hammer_puts {
        cache.put_layers(
            pxml_core::ObjectId::from_raw(i as u32),
            pxml_core::LabelPath::new(vec![pxml_core::Label::from_raw(0)]),
            Arc::clone(&oversized),
        );
    }
    let hammer_ms = started.elapsed().as_secs_f64() * 1e3;
    let spurious_evictions = cache.evictions();
    assert_eq!(spurious_evictions, 0, "oversized puts must never evict warm state");
    assert_eq!(cache.admission_rejections(), hammer_puts);
    assert_eq!(cache.approx_bytes(), warm_bytes, "warm footprint must be untouched");
    eprintln!(
        "phase 3: {hammer_puts} oversized puts in {hammer_ms:.1} ms, {spurious_evictions} spurious evictions"
    );

    let json = format!(
        "{{\n  \"workload\": {{\n    \"labeling\": \"sl\", \"depth\": 5, \"branching\": 2,\n    \"objects\": {}, \"clients\": {clients}, \"mutate_per_mille\": {mpm}\n  }},\n  \"correctness\": {{\n    \"requests\": {phase1_n},\n    \"verified_answers\": {},\n    \"checksum\": {wire_checksum:.9},\n    \"wall_ms\": {phase1_ms:.3},\n    \"p50_us\": {:.3},\n    \"p99_us\": {:.3}\n  }},\n  \"mixed\": {{\n    \"requests\": {phase2_n},\n    \"mutations\": {mutations},\n    \"wall_ms\": {phase2_ms:.3},\n    \"requests_per_s\": {rps:.1},\n    \"p50_us\": {:.3},\n    \"p99_us\": {:.3}\n  }},\n  \"admission_hammer\": {{\n    \"oversized_puts\": {hammer_puts},\n    \"spurious_evictions\": {spurious_evictions},\n    \"rejections\": {},\n    \"wall_ms\": {hammer_ms:.3}\n  }}\n}}\n",
        g.instance.object_count(),
        answers.len(),
        percentile_us(&mut lat1, 0.50),
        percentile_us(&mut lat1, 0.99),
        percentile_us(&mut lat2, 0.50),
        percentile_us(&mut lat2, 0.99),
        cache.admission_rejections(),
    );
    std::fs::write(&out, &json).expect("write BENCH_serve.json");
    println!("wrote {out}");
}
