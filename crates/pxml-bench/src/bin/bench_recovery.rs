//! Durability and overload benchmarks for the WAL-backed daemon,
//! writing the numbers to `BENCH_recovery.json`.
//!
//! Usage:
//! ```text
//! bench_recovery [--out FILE] [--records N] [--max-conns N]
//! ```
//!
//! Three phases:
//!
//! 1. **Append overhead** — `--records` journal appends per fsync
//!    policy (`always`, `batch:8`, `os`) against a fresh segment; the
//!    headline is µs/append and how much of it is fsync.
//! 2. **Replay throughput** — a real daemon journals a 100%-write
//!    workload over a §7.1 instance, then the segment is recovered and
//!    replayed into a fresh engine; headlines are records/s for the
//!    frame parse and ops/s for the apply loop (what boot-time
//!    recovery costs).
//! 3. **Shed latency** — a daemon capped at `--max-conns` holds that
//!    many active connections while 2× as many more arrive; every
//!    extra connection must receive the "overloaded" frame, and the
//!    headline is how quickly (p50/p99 connect-to-frame).

use std::time::Instant;

use pxml_cli::protocol::{self, Request, RequestOptions, Status};
use pxml_cli::serve::{Client, Server, ServeConfig, Target};
use pxml_gen::{generate, serve_workload, Labeling, ServeRequest, WorkloadConfig};
use pxml_query::QueryEngine;
use pxml_storage::{recover_segment, FsyncPolicy, Wal};

fn percentile_us(nanos: &mut [u64], p: f64) -> f64 {
    if nanos.is_empty() {
        return 0.0;
    }
    nanos.sort_unstable();
    let idx = ((nanos.len() - 1) as f64 * p).round() as usize;
    nanos[idx] as f64 / 1e3
}

fn scratch(sub: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pxml-bench-recovery").join(sub);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };
    let out = get("--out").unwrap_or_else(|| "BENCH_recovery.json".into());
    let records: usize = get("--records").and_then(|v| v.parse().ok()).unwrap_or(2000);
    let max_conns: usize = get("--max-conns").and_then(|v| v.parse().ok()).unwrap_or(8);

    // Phase 1: append overhead per fsync policy on a representative op.
    let op_text = "SETEDGE R B1 PROB 0.25";
    let mut append_json = Vec::new();
    for (name, policy) in [
        ("always", FsyncPolicy::Always),
        ("batch:8", FsyncPolicy::Batch(8)),
        ("os", FsyncPolicy::Os),
    ] {
        let dir = scratch(&format!("append-{}", name.replace(':', "-")));
        let (mut wal, _, _) =
            Wal::attach(&dir, "bench", 0xBEEF, policy).expect("attach");
        let started = Instant::now();
        for _ in 0..records {
            wal.append(op_text).expect("append");
        }
        wal.sync().expect("final sync");
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let c = wal.counters();
        let fsyncs = c.fsyncs.load(std::sync::atomic::Ordering::Relaxed);
        let fsync_ms =
            c.fsync_nanos.load(std::sync::atomic::Ordering::Relaxed) as f64 / 1e6;
        let per_append_us = wall_ms * 1e3 / records as f64;
        eprintln!(
            "append {name}: {records} records in {wall_ms:.1} ms \
             ({per_append_us:.2} us/append, {fsyncs} fsyncs, {fsync_ms:.1} ms in fsync)"
        );
        append_json.push(format!(
            "    {{ \"policy\": \"{name}\", \"records\": {records}, \"wall_ms\": {wall_ms:.3}, \
             \"per_append_us\": {per_append_us:.3}, \"fsyncs\": {fsyncs}, \"fsync_ms\": {fsync_ms:.3} }}"
        ));
    }

    // Phase 2: journal a real write workload through the daemon, then
    // time recovery: frame parse, and parse+apply into a fresh engine.
    let g = generate(&WorkloadConfig::paper(5, 2, Labeling::SameLabel, 42));
    let dir = scratch("replay");
    let path = dir.join("recovery_bench.pxmlb");
    pxml_storage::write_binary_file(&g.instance, &path).expect("write instance");
    let wal_dir = dir.join("wal");
    let mut cfg = ServeConfig::ephemeral(vec![path.clone()]);
    cfg.wal_dir = Some(wal_dir.clone());
    cfg.fsync = FsyncPolicy::Batch(64);
    let handle = Server::start(cfg).expect("server starts");
    let port = handle.port().expect("ephemeral port");
    let target = Target::Tcp(format!("127.0.0.1:{port}"));
    let mut client = Client::connect(&target).expect("connect");
    let mut journalled = 0usize;
    for req in serve_workload(&g, records.min(1000), 1000, 7) {
        let ServeRequest::Mutate(ops) = req else { continue };
        let (status, body) = client
            .roundtrip(&Request::Mutate {
                instance: "recovery_bench".into(),
                options: RequestOptions::default(),
                ops,
            })
            .expect("roundtrip");
        assert_eq!(status, Status::Ok, "{body:?}");
        journalled += 1;
    }
    handle.shutdown_and_join().expect("daemon drains");

    let segment = wal_dir.join("recovery_bench.wal");
    let started = Instant::now();
    let seg = recover_segment(&segment).expect("segment recovers");
    let parse_ms = started.elapsed().as_secs_f64() * 1e3;
    assert!(!seg.torn, "drained daemon leaves no torn tail");
    assert!(seg.records.len() >= journalled, "one record per acknowledged op");
    let started = Instant::now();
    let mut engine = QueryEngine::new(pxml_cli::load(&path).expect("reload"));
    let mut applied = 0usize;
    for record in &seg.records {
        let Ok(ops) = pxml_core::parse_ops(engine.instance(), record) else { continue };
        for op in &ops {
            if engine.apply_mutation(op).is_err() {
                break;
            }
            applied += 1;
        }
    }
    let apply_ms = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(applied, seg.records.len(), "every journalled op applies");
    let parse_rps = seg.records.len() as f64 / (parse_ms / 1e3);
    let apply_ops = applied as f64 / (apply_ms / 1e3);
    eprintln!(
        "replay: {} records parsed in {parse_ms:.1} ms ({parse_rps:.0} rec/s), \
         applied in {apply_ms:.1} ms ({apply_ops:.0} ops/s)",
        seg.records.len()
    );

    // Phase 3: shed latency with 2x --max-conns arrivals over a held-
    // full daemon.
    let dir = scratch("shed");
    let path = dir.join("shed_bench.pxmlb");
    pxml_storage::write_binary_file(&g.instance, &path).expect("write instance");
    let mut cfg = ServeConfig::ephemeral(vec![path]);
    cfg.max_conns = Some(max_conns);
    let handle = Server::start(cfg).expect("server starts");
    let port = handle.port().expect("ephemeral port");
    let addr = format!("127.0.0.1:{port}");
    let mut held: Vec<Client> = Vec::with_capacity(max_conns);
    for _ in 0..max_conns {
        let mut c = Client::connect(&Target::Tcp(addr.clone())).expect("connect");
        let (status, _) = c.roundtrip(&Request::Ping).expect("ping");
        assert_eq!(status, Status::Ok);
        held.push(c);
    }
    let attempts = 2 * max_conns;
    let mut shed = 0usize;
    let mut shed_lat = Vec::with_capacity(attempts);
    for _ in 0..attempts {
        let t = Instant::now();
        let mut conn = std::net::TcpStream::connect(&addr).expect("connect");
        let payload = protocol::read_frame(&mut conn)
            .expect("read")
            .expect("a frame before close");
        shed_lat.push(t.elapsed().as_nanos() as u64);
        let (status, body) = protocol::parse_response(&payload).expect("response");
        assert_eq!(status, Status::BudgetRejected, "{body:?}");
        assert!(body.contains("overloaded"), "{body:?}");
        shed += 1;
    }
    let shed_p50 = percentile_us(&mut shed_lat.clone(), 0.50);
    let shed_p99 = percentile_us(&mut shed_lat, 0.99);
    eprintln!(
        "shed: {shed}/{attempts} over-cap connections shed \
         (p50 {shed_p50:.1} us, p99 {shed_p99:.1} us)"
    );
    drop(held);
    handle.shutdown_and_join().expect("daemon drains");

    let json = format!(
        "{{\n  \"append\": [\n{}\n  ],\n  \"replay\": {{\n    \"records\": {}, \"parse_ms\": {parse_ms:.3}, \"parse_records_per_s\": {parse_rps:.1},\n    \"applied_ops\": {applied}, \"apply_ms\": {apply_ms:.3}, \"apply_ops_per_s\": {apply_ops:.1}\n  }},\n  \"shed\": {{\n    \"max_conns\": {max_conns}, \"attempts\": {attempts}, \"shed\": {shed},\n    \"p50_us\": {shed_p50:.3}, \"p99_us\": {shed_p99:.3}\n  }}\n}}\n",
        append_json.join(",\n"),
        seg.records.len(),
    );
    std::fs::write(&out, &json).expect("write BENCH_recovery.json");
    println!("wrote {out}");
}
