//! Regenerates the three panels of the paper's Figure 7 as tables, plus
//! the §7.2 shape checks.
//!
//! Usage:
//! ```text
//! repro_fig7 [a|b|c|all] [--max-objects N] [--instances I] [--queries Q] [--threads T]
//! ```
//! Defaults reproduce a scaled-down grid (max 50 000 objects, 3 instances
//! × 3 queries per cell) that finishes in a few minutes; pass
//! `--max-objects 300000 --instances 10 --queries 10` for the paper's
//! full setting.

use std::time::Duration;

use pxml_bench::{measure_grid, ms, CellResult};
use pxml_gen::{Grid, Labeling};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let panel = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".into());
    let get = |flag: &str, default: u64| -> u64 {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let max_objects = get("--max-objects", 50_000);
    let instances = get("--instances", 3) as usize;
    let queries = get("--queries", 3) as usize;
    let threads = get("--threads", 4) as usize;

    let grid = Grid::paper_grid(max_objects, instances, queries);
    eprintln!(
        "measuring {} cells (max {} objects, {} instances × {} queries each, {} threads)…",
        grid.cells.len(),
        max_objects,
        instances,
        queries,
        threads
    );
    let scratch = std::env::temp_dir().join("pxml-repro-fig7");
    let results = measure_grid(&grid.cells, &scratch, threads);

    match panel.as_str() {
        "a" => print_fig7a(&results),
        "b" => print_fig7b(&results),
        "c" => print_fig7c(&results),
        _ => {
            print_fig7a(&results);
            println!();
            print_fig7b(&results);
            println!();
            print_fig7c(&results);
            println!();
            shape_checks(&results);
        }
    }
}

fn header(title: &str) {
    println!("── {title} ─────────────────────────────────────────────");
    println!(
        "{:<4} {:>2} {:>2} {:>9} {:>12} {:>12} {:>12} {:>12}",
        "lab", "b", "d", "objects", "total(ms)", "copy(ms)", "update℘(ms)", "write(ms)"
    );
}

fn row(r: &CellResult, total: Duration, copy: Duration, update: Duration, write: Duration) {
    println!(
        "{:<4} {:>2} {:>2} {:>9} {:>12} {:>12} {:>12} {:>12}",
        r.config.labeling.short(),
        r.config.branching,
        r.config.depth,
        r.objects,
        ms(total),
        ms(copy),
        ms(update),
        ms(write)
    );
}

fn print_fig7a(results: &[CellResult]) {
    header("Figure 7(a): total query time of ancestor projection");
    for r in results {
        row(r, r.proj_total, r.proj_copy, r.proj_update, r.proj_write);
    }
}

fn print_fig7b(results: &[CellResult]) {
    header("Figure 7(b): update-℘ time of ancestor projection");
    for r in results {
        row(r, r.proj_total, r.proj_copy, r.proj_update, r.proj_write);
    }
}

fn print_fig7c(results: &[CellResult]) {
    header("Figure 7(c): total query time of selection");
    for r in results {
        row(r, r.sel_total, Duration::ZERO, r.sel_update, r.sel_write);
    }
}

/// The five §7.2 claims, checked against the measured series.
fn shape_checks(results: &[CellResult]) {
    println!("── §7.2 shape checks ───────────────────────────────────");

    // 1. Update-℘ is the largest single phase of projection once the
    //    instance is large enough for asymptotics to show (the paper's
    //    Figure 7 plots 100–100 000 objects and reads dominance off the
    //    large end; tiny cells are fixed-cost bound in any implementation).
    let big: Vec<&CellResult> = results.iter().filter(|r| r.objects >= 5_000).collect();
    let dominated = big
        .iter()
        .filter(|r| {
            let other = r.proj_total.saturating_sub(r.proj_update);
            let residual = other.saturating_sub(r.proj_copy).saturating_sub(r.proj_write);
            let rest_max = r.proj_copy.max(r.proj_write).max(residual);
            r.proj_update >= rest_max
        })
        .count();
    println!(
        "1. update-℘ is the largest projection phase in {dominated}/{} cells ≥ 5000 objects (paper: it dominates)",
        big.len()
    );

    // 2. Update time roughly linear in object count (same b, labelling).
    for labeling in [Labeling::SameLabel, Labeling::FullyRandom] {
        for b in [2usize, 4, 8] {
            let series: Vec<&CellResult> = results
                .iter()
                .filter(|r| r.config.branching == b && r.config.labeling == labeling)
                .collect();
            if series.len() >= 2 {
                let first = series.first().unwrap();
                let last = series.last().unwrap();
                let obj_ratio = last.objects as f64 / first.objects as f64;
                let t_ratio =
                    last.proj_update.as_secs_f64() / first.proj_update.as_secs_f64().max(1e-9);
                println!(
                    "2. {} b={b}: objects ×{obj_ratio:.1} ⇒ update-℘ ×{t_ratio:.1} (paper: linear)",
                    labeling.short()
                );
            }
        }
    }

    // 3. b +2 ⇒ update-℘ grows by at most ~16× at fixed object scale
    //    (|℘(o)| × 4, quadratic propagation).
    let per_entry = |r: &CellResult| {
        r.proj_update.as_secs_f64() / r.objects as f64
    };
    for labeling in [Labeling::SameLabel, Labeling::FullyRandom] {
        let pairs = [(2usize, 4usize), (4, 6), (6, 8)];
        for (b1, b2) in pairs {
            let a = results
                .iter()
                .filter(|r| r.config.branching == b1 && r.config.labeling == labeling)
                .map(per_entry)
                .fold(f64::NAN, f64::max);
            let b = results
                .iter()
                .filter(|r| r.config.branching == b2 && r.config.labeling == labeling)
                .map(per_entry)
                .fold(f64::NAN, f64::max);
            if a.is_finite() && b.is_finite() && a > 0.0 {
                println!(
                    "3. {} b {b1}→{b2}: per-object update-℘ ×{:.1} (paper: < 16)",
                    labeling.short(),
                    b / a
                );
            }
        }
    }

    // 4. SL slower than FR for projection at matched cells.
    let mut sl_slower = 0;
    let mut matched = 0;
    for r in results.iter().filter(|r| r.config.labeling == Labeling::SameLabel) {
        if let Some(fr) = results.iter().find(|x| {
            x.config.labeling == Labeling::FullyRandom
                && x.config.branching == r.config.branching
                && x.config.depth == r.config.depth
        }) {
            matched += 1;
            if r.proj_update >= fr.proj_update {
                sl_slower += 1;
            }
        }
    }
    println!("4. SL update-℘ ≥ FR in {sl_slower}/{matched} matched cells (paper: SL is slower)");

    // 5. Selection total dominated by the write phase, and its ℘ update
    //    is tiny.
    let write_dominated = results
        .iter()
        .filter(|r| r.sel_write.as_secs_f64() >= 0.5 * r.sel_total.as_secs_f64())
        .count();
    let tiny_updates = results
        .iter()
        .filter(|r| r.sel_update < Duration::from_millis(1))
        .count();
    println!(
        "5. selection write ≥ 50% of total in {write_dominated}/{} cells; update-℘ < 1 ms in {tiny_updates}/{} (paper: write dominates, update < 0.001 s)",
        results.len(),
        results.len()
    );
}
