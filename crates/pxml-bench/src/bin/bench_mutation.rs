//! Measures what dirty-set invalidation buys the engine over the naive
//! flush-on-write baseline and writes the numbers to
//! `BENCH_mutation.json`.
//!
//! Usage:
//! ```text
//! bench_mutation [--out FILE] [--queries N] [--ops N]
//! ```
//!
//! The workload is a §7.1 instance (depth 7, branching 2, fully-random
//! labels, typed leaves) under two read/write mixes — 90/10 and 50/50 —
//! built from one shared query pool (exists/point over structural-
//! summary label paths) and one shared pool of generated entry-level
//! mutations (`SETEDGE`/`SETVAL`, always-applicable by construction).
//! Both invalidation policies answer the *identical* interleaved
//! sequence single-threaded; a checksum asserts the answers agree.
//!
//! The headline numbers, per mix:
//!
//! * **warm hit-rate** — result-cache hits over the mixed phase (the
//!   pool is answered once before measuring). Dirty-set invalidation
//!   evicts only entries a mutation can affect, so most re-asked
//!   queries stay hits; flush-on-write starts from an empty cache after
//!   every mutation.
//! * **p50 query / mutation latency** — medians over the mixed phase.

use std::time::Instant;

use pxml_algebra::PathExpr;
use pxml_core::{Mutation, ProbInstance, StructuralSummary};
use pxml_gen::{generate, random_mutations, Labeling, WorkloadConfig};
use pxml_query::{InvalidationPolicy, Query, QueryEngine};

enum Step {
    Read(usize),
    Write(usize),
}

struct ModeResult {
    warm_hits: u64,
    warm_misses: u64,
    p50_query_us: f64,
    p50_mutation_us: f64,
    invalidations: u64,
    mix_ms: f64,
    checksum: f64,
}

fn rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

fn p50_us(mut nanos: Vec<u64>) -> f64 {
    if nanos.is_empty() {
        return 0.0;
    }
    nanos.sort_unstable();
    nanos[nanos.len() / 2] as f64 / 1e3
}

/// Answers the whole query pool once (warm-up), then replays the mixed
/// sequence; hits/misses counted after warm-up are the warm numbers.
fn run_mode(
    pi: &ProbInstance,
    queries: &[Query],
    muts: &[Mutation],
    steps: &[Step],
    policy: InvalidationPolicy,
) -> ModeResult {
    let mut engine = QueryEngine::with_threads(pi.clone(), 1);
    engine.set_invalidation_policy(policy);
    let mut checksum = 0.0;
    for q in queries {
        checksum += engine.run(q).unwrap_or(0.0);
    }
    let warm = engine.stats();
    let mut query_ns = Vec::new();
    let mut mutation_ns = Vec::new();
    let started = Instant::now();
    for step in steps {
        match step {
            Step::Read(i) => {
                let t = Instant::now();
                checksum += engine.run(&queries[*i]).unwrap_or(0.0);
                query_ns.push(t.elapsed().as_nanos() as u64);
            }
            Step::Write(i) => {
                let t = Instant::now();
                engine.apply_mutation(&muts[*i]).expect("generated op applies");
                mutation_ns.push(t.elapsed().as_nanos() as u64);
            }
        }
    }
    let mix_ms = started.elapsed().as_secs_f64() * 1e3;
    let s = engine.stats();
    ModeResult {
        warm_hits: s.result_hits - warm.result_hits,
        warm_misses: s.result_misses - warm.result_misses,
        p50_query_us: p50_us(query_ns),
        p50_mutation_us: p50_us(mutation_ns),
        invalidations: s.cache_invalidations,
        mix_ms,
        checksum,
    }
}

fn json_mode(name: &str, m: &ModeResult) -> String {
    format!(
        "    \"{name}\": {{\n      \"warm_hits\": {},\n      \"warm_misses\": {},\n      \"warm_hit_rate\": {:.6},\n      \"p50_query_us\": {:.3},\n      \"p50_mutation_us\": {:.3},\n      \"invalidations\": {},\n      \"mix_ms\": {:.3},\n      \"checksum\": {:.9}\n    }}",
        m.warm_hits,
        m.warm_misses,
        rate(m.warm_hits, m.warm_misses),
        m.p50_query_us,
        m.p50_mutation_us,
        m.invalidations,
        m.mix_ms,
        m.checksum,
    )
}

/// Deterministic interleave: `reads_per_10` reads out of every block of
/// ten steps, pools consumed round-robin.
fn mix_steps(ops: usize, reads_per_10: usize, queries: usize, muts: usize) -> Vec<Step> {
    let (mut qi, mut mi) = (0usize, 0usize);
    (0..ops)
        .map(|s| {
            if s % 10 < reads_per_10 {
                qi += 1;
                Step::Read((qi - 1) % queries)
            } else {
                mi += 1;
                Step::Write((mi - 1) % muts)
            }
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };
    let out = get("--out").unwrap_or_else(|| "BENCH_mutation.json".into());
    let count: usize = get("--queries").and_then(|v| v.parse().ok()).unwrap_or(300);
    let ops: usize = get("--ops").and_then(|v| v.parse().ok()).unwrap_or(3000);

    let mut cfg = WorkloadConfig::paper(7, 2, Labeling::FullyRandom, 42);
    cfg.leaf_domain = 2; // typed leaves so SETVAL ops have targets
    let g = generate(&cfg);
    let pi = &g.instance;
    let summary = StructuralSummary::build(pi);

    let mut queries: Vec<Query> = Vec::new();
    for labels in summary.label_paths(7, count) {
        let path = PathExpr::new(pi.root(), labels);
        let located = pxml_algebra::locate_weak(pi, &path);
        match located.first() {
            Some(&o) if queries.len().is_multiple_of(2) => queries.push(Query::point(path, o)),
            _ => queries.push(Query::exists(path)),
        }
    }
    let muts = random_mutations(pi, ops, 7);
    assert!(!muts.is_empty(), "workload must offer mutable targets");
    eprintln!(
        "bench_mutation: {} queries, {} mutation ops, {} mixed steps over {} objects",
        queries.len(),
        muts.len(),
        ops,
        pi.object_count()
    );

    let mut blocks = Vec::new();
    let mut summary_lines = Vec::new();
    for (mix_name, reads_per_10) in [("rw_90_10", 9usize), ("rw_50_50", 5usize)] {
        let steps = mix_steps(ops, reads_per_10, queries.len(), muts.len());
        let dirty = run_mode(pi, &queries, &muts, &steps, InvalidationPolicy::DirtySet);
        let flush = run_mode(pi, &queries, &muts, &steps, InvalidationPolicy::FlushAll);
        assert!(
            (dirty.checksum - flush.checksum).abs() < 1e-6,
            "{mix_name}: invalidation policy changed answers: {} vs {}",
            dirty.checksum,
            flush.checksum
        );
        let delta = rate(dirty.warm_hits, dirty.warm_misses) - rate(flush.warm_hits, flush.warm_misses);
        summary_lines.push(format!(
            "{mix_name}: warm hit rate flush {:.1}% -> dirty {:.1}% (delta {:+.1} pp); p50 query {:.1} -> {:.1} us; p50 mutation {:.1} vs {:.1} us",
            100.0 * rate(flush.warm_hits, flush.warm_misses),
            100.0 * rate(dirty.warm_hits, dirty.warm_misses),
            100.0 * delta,
            flush.p50_query_us,
            dirty.p50_query_us,
            flush.p50_mutation_us,
            dirty.p50_mutation_us,
        ));
        blocks.push(format!(
            "  \"{mix_name}\": {{\n{},\n{},\n    \"warm_hit_rate_delta\": {delta:.6}\n  }}",
            json_mode("dirty_set", &dirty),
            json_mode("flush_all", &flush),
        ));
    }

    let json = format!(
        "{{\n  \"workload\": {{\n    \"labeling\": \"fr\", \"depth\": 7, \"branching\": 2, \"leaf_domain\": 2,\n    \"queries\": {}, \"mutation_pool\": {}, \"mixed_steps\": {ops}, \"objects\": {}\n  }},\n{}\n}}\n",
        queries.len(),
        muts.len(),
        pi.object_count(),
        blocks.join(",\n"),
    );
    std::fs::write(&out, &json).expect("write BENCH_mutation.json");
    for line in &summary_lines {
        eprintln!("{line}");
    }
    println!("wrote {out}");
}
