//! Measurement harness for the Figure 7 reproduction.
//!
//! The paper's §7.1 procedure, followed literally: per (depth, branching,
//! labelling) cell, generate `instances` balanced-tree probabilistic
//! instances; per instance, generate accepted random queries of length
//! equal to the depth; measure, per query, the phases of ancestor
//! projection (copy + locate + structure + update-℘ + write) and of
//! selection (copy + locate + update-℘ + write); report per-cell
//! averages. The `repro_fig7` binary prints the three panels as tables.

#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::time::Duration;

use crossbeam::thread as cb_thread;
use parking_lot::Mutex;

use pxml_algebra::{ancestor_project_timed, select_timed};
use pxml_gen::{generate, query_batch, selection_batch, GridCell, WorkloadConfig};
use pxml_storage::write_text_file;

/// Averaged timings of one grid cell.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// The cell's configuration (seed field unused; per-instance seeds
    /// are derived).
    pub config: WorkloadConfig,
    /// Number of objects per instance.
    pub objects: u64,
    /// Total `℘` entries per instance.
    pub interp_entries: u64,
    /// Number of (instance, query) measurements averaged.
    pub samples: usize,
    /// Ancestor projection: mean total time (copy+locate+structure+℘+write).
    pub proj_total: Duration,
    /// Ancestor projection: mean input-copy time.
    pub proj_copy: Duration,
    /// Ancestor projection: mean update-℘ time (the Figure 7(b) series).
    pub proj_update: Duration,
    /// Ancestor projection: mean result-write time.
    pub proj_write: Duration,
    /// Selection: mean total time.
    pub sel_total: Duration,
    /// Selection: mean update-℘ time (the paper: "< 0.001 second").
    pub sel_update: Duration,
    /// Selection: mean result-write time (the Figure 7(c) dominator).
    pub sel_write: Duration,
}

impl CellResult {
    /// Short cell label, e.g. `SL b=4 d=5 (781 objects)`.
    pub fn label(&self) -> String {
        format!(
            "{} b={} d={} ({} objects)",
            self.config.labeling.short(),
            self.config.branching,
            self.config.depth,
            self.objects
        )
    }
}

/// Runs the full §7.1 measurement for one grid cell. Result files are
/// written into (and removed from) `scratch`.
pub fn measure_cell(cell: &GridCell, scratch: &Path) -> CellResult {
    let mut samples = 0usize;
    let mut proj_total = Duration::ZERO;
    let mut proj_copy = Duration::ZERO;
    let mut proj_update = Duration::ZERO;
    let mut proj_write = Duration::ZERO;
    let mut sel_total = Duration::ZERO;
    let mut sel_update = Duration::ZERO;
    let mut sel_write = Duration::ZERO;

    for rep in 0..cell.instances {
        let mut config = cell.config.clone();
        config.seed = hash_seed(&config, rep as u64);
        let g = generate(&config);

        // Figure 7(a)/(b): ancestor projection.
        for (qi, q) in query_batch(&g, cell.queries_per_instance, config.seed ^ 0xABCD)
            .into_iter()
            .enumerate()
        {
            let (result, mut times) =
                ancestor_project_timed(&g.instance, &q).expect("generated trees are accepted");
            let path = scratch.join(format!("proj_{rep}_{qi}.pxml"));
            pxml_algebra::timing::timed(&mut times.write, || {
                write_text_file(&result, &path).expect("scratch dir writable")
            });
            let _ = std::fs::remove_file(&path);
            proj_total += times.total();
            proj_copy += times.copy;
            proj_update += times.update_interp;
            proj_write += times.write;
            samples += 1;
        }

        // Figure 7(c): selection.
        for (qi, (cond, _)) in
            selection_batch(&g, cell.queries_per_instance, config.seed ^ 0xEF01)
                .into_iter()
                .enumerate()
        {
            let (selected, mut times) =
                select_timed(&g.instance, &cond).expect("generated selections succeed");
            let path = scratch.join(format!("sel_{rep}_{qi}.pxml"));
            pxml_algebra::timing::timed(&mut times.write, || {
                write_text_file(&selected.instance, &path).expect("scratch dir writable")
            });
            let _ = std::fs::remove_file(&path);
            sel_total += times.total();
            sel_update += times.update_interp;
            sel_write += times.write;
        }
    }

    let n = samples.max(1) as u32;
    CellResult {
        config: cell.config.clone(),
        objects: cell.config.object_count(),
        interp_entries: cell.config.interpretation_entries(),
        samples,
        proj_total: proj_total / n,
        proj_copy: proj_copy / n,
        proj_update: proj_update / n,
        proj_write: proj_write / n,
        sel_total: sel_total / n,
        sel_update: sel_update / n,
        sel_write: sel_write / n,
    }
}

/// Runs a whole grid, fanning cells out over `threads` workers. The
/// sweep is embarrassingly parallel; use `threads = 1` when absolute
/// timings matter more than wall-clock.
pub fn measure_grid(cells: &[GridCell], scratch: &Path, threads: usize) -> Vec<CellResult> {
    std::fs::create_dir_all(scratch).expect("scratch dir creatable");
    if threads <= 1 {
        return cells.iter().map(|c| measure_cell(c, scratch)).collect();
    }
    let results: Mutex<Vec<(usize, CellResult)>> = Mutex::new(Vec::new());
    let next: Mutex<usize> = Mutex::new(0);
    cb_thread::scope(|s| {
        for t in 0..threads {
            let results = &results;
            let next = &next;
            let scratch: PathBuf = scratch.join(format!("w{t}"));
            std::fs::create_dir_all(&scratch).expect("scratch dir creatable");
            s.spawn(move |_| loop {
                let i = {
                    let mut n = next.lock();
                    let i = *n;
                    *n += 1;
                    i
                };
                if i >= cells.len() {
                    break;
                }
                let r = measure_cell(&cells[i], &scratch);
                results.lock().push((i, r));
            });
        }
    })
    .expect("worker threads join");
    let mut out = results.into_inner();
    out.sort_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, r)| r).collect()
}

/// Derives a per-repetition seed from the cell parameters so every run
/// of the harness is reproducible.
pub fn hash_seed(config: &WorkloadConfig, rep: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in [
        config.depth as u64,
        config.branching as u64,
        config.labels_per_depth as u64,
        match config.labeling {
            pxml_gen::Labeling::SameLabel => 1,
            pxml_gen::Labeling::FullyRandom => 2,
        },
        rep,
    ] {
        h ^= part;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Formats a duration in milliseconds with 3 decimal places.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_gen::{Grid, Labeling};

    #[test]
    fn measure_cell_produces_sane_numbers() {
        let cell = GridCell {
            config: WorkloadConfig::paper(3, 2, Labeling::SameLabel, 0),
            instances: 1,
            queries_per_instance: 2,
        };
        let scratch = std::env::temp_dir().join("pxml-bench-test");
        std::fs::create_dir_all(&scratch).unwrap();
        let r = measure_cell(&cell, &scratch);
        assert_eq!(r.objects, 15);
        assert!(r.samples > 0);
        assert!(r.proj_total >= r.proj_update);
        assert!(r.sel_total >= r.sel_write);
    }

    #[test]
    fn seeds_are_reproducible_and_distinct() {
        let c = WorkloadConfig::paper(3, 2, Labeling::SameLabel, 0);
        assert_eq!(hash_seed(&c, 0), hash_seed(&c, 0));
        assert_ne!(hash_seed(&c, 0), hash_seed(&c, 1));
        let d = WorkloadConfig::paper(3, 2, Labeling::FullyRandom, 0);
        assert_ne!(hash_seed(&c, 0), hash_seed(&d, 0));
    }

    #[test]
    fn grid_measurement_parallel_matches_cell_count() {
        let grid = Grid::smoke();
        let scratch = std::env::temp_dir().join("pxml-bench-grid-test");
        let take: Vec<_> = grid.cells.into_iter().take(3).collect();
        let rs = measure_grid(&take, &scratch, 2);
        assert_eq!(rs.len(), 3);
    }
}
