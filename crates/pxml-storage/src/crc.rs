//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven.
//!
//! Hand-rolled so the crate stays dependency-free; the table is built at
//! compile time. This is the same checksum gzip/PNG/zip use, so external
//! tools can cross-check `.pxmlb` footers.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"PXML instance payload");
        let mut flipped = b"PXML instance payload".to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(base, crc32(&flipped));
    }
}
