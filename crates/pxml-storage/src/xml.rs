//! XML export of semistructured instances.
//!
//! PXML's possible worlds are ordinary OEM-style semistructured
//! instances; this module renders them as XML documents — edge labels
//! become element names, object ids become `oid` attributes, and typed
//! leaf values become text content. Shared objects (DAG worlds) are
//! emitted once in full and afterwards as `<... ref="oid"/>` references,
//! so the export is linear in the instance size and loses nothing.

use std::fmt::Write as _;

use pxml_core::{ObjectId, SdInstance, Value};

/// Renders an instance as an XML document. The root element is named
/// after the root object's… root objects have no incoming label, so the
/// document element is `<pxml root="R">`.
pub fn to_xml(s: &SdInstance) -> String {
    let mut out = String::new();
    let root_name = s.catalog().object_name(s.root());
    let _ = writeln!(out, r#"<pxml root="{}">"#, escape(root_name));
    let mut emitted: Vec<ObjectId> = Vec::new();
    for &(label, child) in s.node(s.root()).map(|n| n.children()).unwrap_or(&[]) {
        emit(s, label, child, 1, &mut emitted, &mut out);
    }
    let _ = writeln!(out, "</pxml>");
    out
}

fn emit(
    s: &SdInstance,
    label: pxml_core::Label,
    o: ObjectId,
    depth: usize,
    emitted: &mut Vec<ObjectId>,
    out: &mut String,
) {
    let indent = "  ".repeat(depth);
    let tag = escape(s.catalog().label_name(label));
    let name = escape(s.catalog().object_name(o));
    if emitted.contains(&o) {
        let _ = writeln!(out, r#"{indent}<{tag} ref="{name}"/>"#);
        return;
    }
    emitted.push(o);
    let Some(node) = s.node(o) else { return };
    match (node.children().is_empty(), node.leaf()) {
        (true, Some((_, v))) => {
            let _ = writeln!(
                out,
                r#"{indent}<{tag} oid="{name}">{}</{tag}>"#,
                escape(&value_text(v))
            );
        }
        (true, None) => {
            let _ = writeln!(out, r#"{indent}<{tag} oid="{name}"/>"#);
        }
        (false, _) => {
            let _ = writeln!(out, r#"{indent}<{tag} oid="{name}">"#);
            for &(l, c) in node.children() {
                emit(s, l, c, depth + 1, emitted, out);
            }
            let _ = writeln!(out, "{indent}</{tag}>");
        }
    }
}

fn value_text(v: &Value) -> String {
    match v {
        Value::Str(s) => s.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(x) => format!("{x:?}"),
        Value::Bool(b) => b.to_string(),
    }
}

/// Minimal XML escaping for text and attribute content.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_core::fixtures::{fig1_instance, fig3_s1};

    #[test]
    fn fig1_exports_nested_elements() {
        let xml = to_xml(&fig1_instance());
        assert!(xml.starts_with("<pxml root=\"R\">"));
        assert!(xml.contains("<book oid=\"B1\">"));
        assert!(xml.contains("<title oid=\"T1\">VQDB</title>"));
        assert!(xml.contains("<institution oid=\"I2\">UMD</institution>"));
        assert!(xml.trim_end().ends_with("</pxml>"));
    }

    #[test]
    fn shared_objects_become_references() {
        // S1 of Figure 3 shares A1 between B1 and B2.
        let xml = to_xml(&fig3_s1());
        assert_eq!(xml.matches("oid=\"A1\"").count(), 1, "A1 emitted once in full");
        assert_eq!(xml.matches("ref=\"A1\"").count(), 1, "second occurrence is a ref");
    }

    #[test]
    fn special_characters_are_escaped() {
        let mut b = pxml_core::SdInstance::builder();
        let t = b.define_type(pxml_core::LeafType::new(
            "t",
            [Value::str("a<b&c>\"d'")],
        ));
        let r = b.object("r");
        let leaf = b.object("x<y");
        let l = b.label("when&where");
        b.edge(r, l, leaf);
        b.leaf_value(leaf, t, Value::str("a<b&c>\"d'"));
        let s = b.build(r).unwrap();
        let xml = to_xml(&s);
        assert!(xml.contains("&lt;"));
        assert!(xml.contains("&amp;"));
        assert!(!xml.contains("a<b"));
    }

    #[test]
    fn balanced_tags() {
        let xml = to_xml(&fig1_instance());
        for tag in ["book", "author", "title", "institution", "pxml"] {
            let opens = xml.matches(&format!("<{tag} ")).count()
                + xml.matches(&format!("<{tag}>")).count();
            let closes = xml.matches(&format!("</{tag}>")).count();
            let selfclosing = xml
                .lines()
                .filter(|l| l.trim_start().starts_with(&format!("<{tag} ")) && l.contains("/>"))
                .count();
            assert_eq!(opens, closes + selfclosing, "tag {tag} unbalanced");
        }
    }
}
