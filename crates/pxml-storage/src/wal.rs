//! Write-ahead log for the `pxml serve` mutation path.
//!
//! A daemon that applies §6.1 mutations in registry memory loses every
//! acknowledged write on a crash. This module supplies the durability
//! layer: an **append-only, CRC-32-framed mutation journal** whose
//! payloads are the PR 6 ops-file grammar (`pxml_core::render_ops` /
//! `pxml_core::parse_ops`), so the recovery path replays exactly the
//! text the daemon validated live.
//!
//! ## Segment layout
//!
//! One segment file per instance (`<name>.wal`):
//!
//! ```text
//! header  (28 bytes):
//!   [8]  magic  "PXWALSEG"
//!   [4]  u32 LE format version (1)
//!   [8]  u64 LE generation — monotone, bumped at every rotation
//!   [4]  u32 LE snapshot CRC — crc32 of the base snapshot file bytes
//!   [4]  u32 LE header CRC — crc32 of the 24 bytes above
//! records (repeated):
//!   [4]  u32 LE payload length (≤ MAX_RECORD_BYTES)
//!   [8]  u64 LE sequence number (0, 1, 2, … within the segment)
//!   [n]  payload — UTF-8 ops text in the `pxml mutate` grammar
//!   [4]  u32 LE record CRC — crc32 over length ‖ seq ‖ payload
//! ```
//!
//! The **generation header binds each segment to its base snapshot**: a
//! segment only replays against the exact file bytes it journalled on
//! top of. If the snapshot on disk no longer hashes to the header's
//! CRC (an operator replaced it out of band, or a checkpoint crashed
//! between the snapshot rename and the segment rotation), the segment
//! is quarantined as `<name>.wal.orphaned` and a fresh one is started —
//! never replayed against the wrong base.
//!
//! ## Torn tails
//!
//! A crash mid-append leaves a torn record at the end of the segment.
//! [`recover_segment`] reads the **longest valid prefix** — records
//! with an intact CRC and contiguous sequence numbers — and reports the
//! byte offset where validity ended instead of erroring; the writer
//! resumes by truncating the tear away. A corrupt *header* cannot be
//! truncated around (nothing after it can be trusted) and is a typed
//! error, which callers treat as "orphan and start fresh".
//!
//! ## Durability policies
//!
//! [`FsyncPolicy`] decides when appends reach stable storage:
//! `Always` fsyncs every record before the append returns (an
//! acknowledged mutation survives `kill -9`), `Batch(n)` fsyncs every
//! n-th record (bounded loss window, much cheaper), `Os` leaves
//! flushing to the kernel (loss window = the page-cache flush interval).

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::crc::crc32;
use crate::error::{Result, StorageError};

/// Segment file magic.
pub const WAL_MAGIC: &[u8; 8] = b"PXWALSEG";
/// Current segment format version.
pub const WAL_VERSION: u32 = 1;
/// Header size in bytes.
pub const WAL_HEADER_BYTES: usize = 28;
/// Per-record frame overhead (length + seq + CRC).
pub const RECORD_OVERHEAD: usize = 16;
/// Refuse record payloads above 16 MiB before allocating — a torn
/// length field must never balloon memory.
pub const MAX_RECORD_BYTES: u32 = 16 * 1024 * 1024;

/// When appends are forced to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync before every append returns: an acknowledged mutation
    /// survives `kill -9`.
    Always,
    /// fsync every n-th append: at most n−1 acknowledged mutations can
    /// be lost to a crash.
    Batch(u32),
    /// Never fsync explicitly; the kernel flushes on its own schedule.
    Os,
}

impl FsyncPolicy {
    /// Parses `always` / `batch:N` / `os` (the `--fsync` flag grammar).
    pub fn parse(s: &str) -> std::result::Result<FsyncPolicy, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "os" => Ok(FsyncPolicy::Os),
            other => match other.strip_prefix("batch:") {
                Some(n) => {
                    let n: u32 =
                        n.parse().map_err(|_| format!("bad batch size in --fsync {other:?}"))?;
                    if n == 0 {
                        return Err("--fsync batch:0 is meaningless; use batch:1 or always".into());
                    }
                    Ok(FsyncPolicy::Batch(n))
                }
                None => Err(format!("--fsync wants always|batch:N|os, got {other:?}")),
            },
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Batch(n) => write!(f, "batch:{n}"),
            FsyncPolicy::Os => write!(f, "os"),
        }
    }
}

/// Monotone WAL counters, shared so a metrics exporter can read them
/// while the writer is locked by a mutation.
#[derive(Debug, Default)]
pub struct WalCounters {
    /// Records appended (across rotations).
    pub appends: AtomicU64,
    /// Bytes appended, frame overhead included.
    pub appended_bytes: AtomicU64,
    /// Explicit fsync calls issued by the policy.
    pub fsyncs: AtomicU64,
    /// Wall-clock nanoseconds spent inside fsync.
    pub fsync_nanos: AtomicU64,
    /// Records replayed at attach time (boot or reload).
    pub replayed: AtomicU64,
    /// Segment rotations performed (checkpoints).
    pub rotations: AtomicU64,
}

/// The decoded state of one segment file.
#[derive(Debug)]
pub struct RecoveredSegment {
    /// The segment's generation (from the header).
    pub generation: u64,
    /// CRC-32 of the base snapshot file this segment journals on top of.
    pub snapshot_crc: u32,
    /// The longest valid record prefix, in order.
    pub records: Vec<String>,
    /// Byte offset where validity ended — the resume point. Equals the
    /// file length when the segment is wholly intact.
    pub valid_len: u64,
    /// End offset of each valid record (parallel to `records`); useful
    /// for tests that tear the file at exact record boundaries.
    pub offsets: Vec<u64>,
    /// True when bytes past `valid_len` existed and were disregarded.
    pub torn: bool,
}

fn header_bytes(generation: u64, snapshot_crc: u32) -> [u8; WAL_HEADER_BYTES] {
    let mut h = [0u8; WAL_HEADER_BYTES];
    h[..8].copy_from_slice(WAL_MAGIC);
    h[8..12].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h[12..20].copy_from_slice(&generation.to_le_bytes());
    h[20..24].copy_from_slice(&snapshot_crc.to_le_bytes());
    let crc = crc32(&h[..24]);
    h[24..28].copy_from_slice(&crc.to_le_bytes());
    h
}

fn record_crc(len: u32, seq: u64, payload: &[u8]) -> u32 {
    let mut framed = Vec::with_capacity(12 + payload.len());
    framed.extend_from_slice(&len.to_le_bytes());
    framed.extend_from_slice(&seq.to_le_bytes());
    framed.extend_from_slice(payload);
    crc32(&framed)
}

fn record_frame(seq: u64, payload: &[u8]) -> Vec<u8> {
    let len = payload.len() as u32;
    let mut frame = Vec::with_capacity(RECORD_OVERHEAD + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&seq.to_le_bytes());
    frame.extend_from_slice(payload);
    frame.extend_from_slice(&record_crc(len, seq, payload).to_le_bytes());
    frame
}

/// Reads a segment file, returning the longest valid record prefix.
///
/// Torn or corrupted **records** end the prefix (never an error); a
/// corrupted **header** is [`StorageError::Corrupt`]-class failure
/// surfaced as [`StorageError::Binary`], because nothing after an
/// untrusted header can be replayed safely.
pub fn recover_segment(path: &Path) -> Result<RecoveredSegment> {
    let bytes = std::fs::read(path)?;
    recover_segment_bytes(&bytes)
}

/// [`recover_segment`] over an in-memory image (the fuzz harness's
/// entry point — no filesystem round-trip per mutation).
pub fn recover_segment_bytes(bytes: &[u8]) -> Result<RecoveredSegment> {
    if bytes.len() < WAL_HEADER_BYTES {
        return Err(StorageError::Binary(format!(
            "wal segment holds {} bytes, shorter than the {WAL_HEADER_BYTES}-byte header",
            bytes.len()
        )));
    }
    if &bytes[..8] != WAL_MAGIC {
        return Err(StorageError::Binary("wal segment magic mismatch".into()));
    }
    let le_u32 = |b: &[u8]| u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
    let le_u64 = |b: &[u8]| {
        u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    };
    let version = le_u32(&bytes[8..12]);
    if version != WAL_VERSION {
        return Err(StorageError::Version { found: version, supported: WAL_VERSION });
    }
    let stored_crc = le_u32(&bytes[24..28]);
    let actual_crc = crc32(&bytes[..24]);
    if stored_crc != actual_crc {
        return Err(StorageError::Corrupt { expected: stored_crc, actual: actual_crc });
    }
    let generation = le_u64(&bytes[12..20]);
    let snapshot_crc = le_u32(&bytes[20..24]);

    let mut records = Vec::new();
    let mut offsets = Vec::new();
    let mut pos = WAL_HEADER_BYTES;
    let mut next_seq = 0u64;
    loop {
        // Anything that fails from here on is a torn tail: stop at the
        // last fully-valid record instead of erroring.
        if bytes.len() - pos < RECORD_OVERHEAD {
            break;
        }
        let len = le_u32(&bytes[pos..pos + 4]);
        if len > MAX_RECORD_BYTES {
            break;
        }
        let total = RECORD_OVERHEAD + len as usize;
        if bytes.len() - pos < total {
            break;
        }
        let seq = le_u64(&bytes[pos + 4..pos + 12]);
        if seq != next_seq {
            break;
        }
        let payload = &bytes[pos + 12..pos + 12 + len as usize];
        let stored = le_u32(&bytes[pos + 12 + len as usize..pos + total]);
        if stored != record_crc(len, seq, payload) {
            break;
        }
        let Ok(text) = std::str::from_utf8(payload) else { break };
        records.push(text.to_string());
        pos += total;
        offsets.push(pos as u64);
        next_seq += 1;
    }
    Ok(RecoveredSegment {
        generation,
        snapshot_crc,
        records,
        valid_len: pos as u64,
        offsets,
        torn: pos < bytes.len(),
    })
}

/// What [`Wal::attach`] did with the segment it found (surfaced so the
/// daemon can log it and tests can assert on it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttachOutcome {
    /// No segment existed; a fresh one was created.
    Fresh,
    /// An intact (possibly torn-tailed) segment matched the snapshot;
    /// its records are ready to replay.
    Resumed {
        /// Records recovered for replay.
        records: usize,
        /// True when a torn tail was truncated away.
        torn: bool,
    },
    /// The segment was unreadable or bound to a different snapshot; it
    /// was renamed aside and a fresh segment started.
    Orphaned {
        /// Where the old segment went.
        quarantined: PathBuf,
    },
}

/// One instance's journal: the live segment plus append/rotate state.
///
/// The daemon holds one `Wal` per instance behind the slot's mutation
/// lock; every `MUTATE` appends **before** applying, `CHECKPOINT`
/// snapshots and rotates, and boot/`RELOAD` replay through
/// [`Wal::attach`] / [`Wal::live_records`].
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    policy: FsyncPolicy,
    generation: u64,
    /// CRC-32 of the base snapshot the live segment is bound to (the
    /// value in its header).
    snapshot_crc: u32,
    next_seq: u64,
    unsynced: u32,
    /// End offset of the last fully-appended record: where a failed
    /// append truncates back to, so partial frame bytes can never sit
    /// in front of later acknowledged records.
    good_len: u64,
    /// Set when a failed append left bytes that could not be truncated
    /// away. Appends into a poisoned segment are refused (recovery's
    /// prefix scan would silently discard them); a rotation replaces
    /// the file wholesale and clears the poison.
    poisoned: bool,
    counters: Arc<WalCounters>,
    /// Ops text appended since the last rotation, in order — the live
    /// tail `RELOAD` replays without re-reading the file.
    tail: Vec<String>,
}

fn create_segment(path: &Path, generation: u64, snapshot_crc: u32) -> Result<File> {
    let mut f = OpenOptions::new().create(true).write(true).truncate(true).open(path)?;
    f.write_all(&header_bytes(generation, snapshot_crc))?;
    // The header must be durable before any append claims to be: a
    // record without its header is unreadable.
    f.sync_all()?;
    Ok(f)
}

impl Wal {
    /// Opens (or creates) the journal for `name` under `dir`, binding it
    /// to a base snapshot whose file bytes hash to `snapshot_crc`.
    ///
    /// Returns the attach outcome plus the records to replay (empty
    /// unless an intact matching segment was resumed). A segment bound
    /// to a *different* snapshot CRC is quarantined, never replayed.
    pub fn attach(
        dir: &Path,
        name: &str,
        snapshot_crc: u32,
        policy: FsyncPolicy,
    ) -> Result<(Wal, AttachOutcome, Vec<String>)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.wal"));
        // A crash mid-rotation can leave a stale temp segment behind;
        // it was never renamed into place, so it never held acknowledged
        // state.
        let _ = std::fs::remove_file(segment_tmp_path(&path));

        if path.exists() {
            match recover_segment(&path) {
                Ok(seg) if seg.snapshot_crc == snapshot_crc => {
                    let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
                    if seg.torn {
                        // Truncate the tear so resumed appends extend the
                        // valid prefix, not a garbage tail.
                        file.set_len(seg.valid_len)?;
                        file.sync_all()?;
                    }
                    file.seek(SeekFrom::Start(seg.valid_len))?;
                    let outcome =
                        AttachOutcome::Resumed { records: seg.records.len(), torn: seg.torn };
                    let wal = Wal {
                        path,
                        file,
                        policy,
                        generation: seg.generation,
                        snapshot_crc: seg.snapshot_crc,
                        next_seq: seg.records.len() as u64,
                        unsynced: 0,
                        good_len: seg.valid_len,
                        poisoned: false,
                        counters: Arc::new(WalCounters::default()),
                        tail: seg.records.clone(),
                    };
                    wal.counters.replayed.fetch_add(seg.records.len() as u64, Ordering::Relaxed);
                    return Ok((wal, outcome, seg.records));
                }
                Ok(seg) => {
                    // Intact segment, wrong base: the snapshot moved
                    // underneath it (out-of-band replace, or a crash in
                    // the checkpoint window after the snapshot rename).
                    // Those records are either already inside the new
                    // snapshot or journalled against bytes that no
                    // longer exist — quarantine, never guess.
                    let quarantined = orphan_path(&path, seg.generation);
                    std::fs::rename(&path, &quarantined)?;
                    let wal =
                        Self::fresh(&path, seg.generation + 1, snapshot_crc, policy)?;
                    return Ok((wal, AttachOutcome::Orphaned { quarantined }, Vec::new()));
                }
                Err(_) => {
                    let quarantined = orphan_path(&path, 0);
                    std::fs::rename(&path, &quarantined)?;
                    let wal = Self::fresh(&path, 1, snapshot_crc, policy)?;
                    return Ok((wal, AttachOutcome::Orphaned { quarantined }, Vec::new()));
                }
            }
        }
        let wal = Self::fresh(&path, 1, snapshot_crc, policy)?;
        Ok((wal, AttachOutcome::Fresh, Vec::new()))
    }

    fn fresh(path: &Path, generation: u64, snapshot_crc: u32, policy: FsyncPolicy) -> Result<Wal> {
        let file = create_segment(path, generation, snapshot_crc)?;
        Ok(Wal {
            path: path.to_path_buf(),
            file,
            policy,
            generation,
            snapshot_crc,
            next_seq: 0,
            unsynced: 0,
            good_len: WAL_HEADER_BYTES as u64,
            poisoned: false,
            counters: Arc::new(WalCounters::default()),
            tail: Vec::new(),
        })
    }

    /// The live segment's generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// CRC-32 of the base snapshot the live segment is bound to. A
    /// caller recovering a slot compares this against the on-disk file
    /// hash to tell "snapshot unchanged, replay the tail" apart from
    /// "a checkpoint snapshotted but never rotated".
    pub fn snapshot_crc(&self) -> u32 {
        self.snapshot_crc
    }

    /// True when a failed append left bytes that could not be truncated
    /// away; appends are refused until a rotation replaces the segment.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// The segment file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Shared monotone counters (appends, fsyncs, fsync nanos, …).
    pub fn counters(&self) -> Arc<WalCounters> {
        Arc::clone(&self.counters)
    }

    /// Ops records appended (or recovered) since the last rotation —
    /// the tail `RELOAD` must replay on top of the on-disk snapshot.
    pub fn live_records(&self) -> &[String] {
        &self.tail
    }

    /// Appends one ops-text record, honouring the fsync policy, and
    /// returns its sequence number. On any error the caller must treat
    /// the mutation as **refused**: nothing may apply that did not land
    /// in the journal first.
    ///
    /// A failed write is physically rolled back — the file is truncated
    /// to the last fully-appended record — so partial frame bytes (an
    /// ENOSPC mid-`write_all`, say) can never sit in the middle of the
    /// segment where recovery's prefix scan would stop dead in front of
    /// later acknowledged records. If even that truncation fails the
    /// segment is poisoned and every further append is refused until a
    /// rotation replaces it.
    pub fn append(&mut self, ops_text: &str) -> Result<u64> {
        if self.poisoned {
            return Err(StorageError::Binary(
                "wal segment is poisoned (an earlier failed append could not be truncated \
                 away); checkpoint to rotate onto a fresh segment"
                    .into(),
            ));
        }
        let payload = ops_text.as_bytes();
        if payload.len() > MAX_RECORD_BYTES as usize {
            return Err(StorageError::Binary(format!(
                "wal record of {} bytes exceeds the {MAX_RECORD_BYTES}-byte ceiling",
                payload.len()
            )));
        }
        let seq = self.next_seq;
        let frame = record_frame(seq, payload);
        if let Err(e) = self.file.write_all(&frame) {
            self.rewind_to_good();
            return Err(e.into());
        }

        let must_sync = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::Batch(n) => self.unsynced + 1 >= n,
            FsyncPolicy::Os => false,
        };
        if must_sync {
            if let Err(e) = self.sync() {
                // The frame may or may not have reached the platter; the
                // caller refuses the mutation either way, so the record
                // must not survive into recovery.
                self.rewind_to_good();
                return Err(e);
            }
        } else {
            self.unsynced += 1;
        }
        self.next_seq += 1;
        self.good_len += frame.len() as u64;
        self.counters.appends.fetch_add(1, Ordering::Relaxed);
        self.counters.appended_bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.tail.push(ops_text.to_string());
        Ok(seq)
    }

    /// Truncates the segment back to the last fully-appended record and
    /// re-seats the write cursor there; poisons the segment if either
    /// step fails (a bare `set_len` without the seek would make the next
    /// append punch a zero-filled hole — garbage mid-file again).
    fn rewind_to_good(&mut self) {
        let restored = self.file.set_len(self.good_len).is_ok()
            && self.file.seek(SeekFrom::Start(self.good_len)).is_ok();
        if restored {
            // Best-effort durability for the truncation itself. Even
            // unsynced, the moved cursor already keeps later appends
            // contiguous with the valid prefix, and a crash-surviving
            // stale tail is end-of-file garbage recovery truncates.
            let _ = self.file.sync_data();
        } else {
            self.poisoned = true;
        }
    }

    /// Drops any bytes past the last fully-appended record — the repair
    /// a caller runs when a panic may have interrupted an [`Wal::append`]
    /// midway (the file can hold a partial frame the normal error path
    /// never got to roll back). Idempotent; a no-op on a clean segment.
    pub fn repair(&mut self) {
        if !self.poisoned {
            self.rewind_to_good();
        }
    }

    /// Forces pending appends to stable storage (also used before a
    /// rotation, so no acknowledged record is lost to the segment swap).
    pub fn sync(&mut self) -> Result<()> {
        let t = Instant::now();
        self.file.sync_data()?;
        self.counters.fsync_nanos.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.counters.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.unsynced = 0;
        Ok(())
    }

    /// Rotates to a fresh segment bound to `new_snapshot_crc`,
    /// atomically: the new segment is written beside the old one and
    /// renamed over it, so a crash leaves either the old journal (whose
    /// records the just-written snapshot already contains — they are
    /// quarantined at next attach by the CRC binding) or the new empty
    /// one. Call **after** the snapshot itself is durably on disk.
    /// Clears a poisoned state: the suspect file is gone wholesale.
    pub fn rotate(&mut self, new_snapshot_crc: u32) -> Result<()> {
        self.rotate_with_tail(new_snapshot_crc, &[])
    }

    /// [`Wal::rotate`] that additionally re-journals `tail` as the new
    /// segment's opening records. This is how `RELOAD` **rebinds** the
    /// journal when the on-disk snapshot changed underneath it: the
    /// fresh segment binds to the snapshot actually being served and
    /// carries the acknowledged tail, so the next boot replays exactly
    /// what the live engine replayed (instead of quarantining a
    /// stale-bound segment and silently losing fsynced mutations).
    ///
    /// The new segment is fully written and fsynced *beside* the live
    /// one before the rename, so a failure at any point leaves the old
    /// journal untouched and the `Wal` state unchanged.
    pub fn rotate_with_tail(&mut self, new_snapshot_crc: u32, tail: &[String]) -> Result<()> {
        if !self.poisoned {
            // Flush the outgoing segment first so its acknowledged
            // records are durable if the swap below fails midway. A
            // poisoned segment is being abandoned precisely because its
            // file state is untrustworthy — don't insist on syncing it.
            self.sync()?;
        }
        let tmp = segment_tmp_path(&self.path);
        let next_gen = self.generation + 1;
        let built = (|| -> Result<(File, u64)> {
            let mut file = create_segment(&tmp, next_gen, new_snapshot_crc)?;
            let mut len = WAL_HEADER_BYTES as u64;
            for (seq, rec) in tail.iter().enumerate() {
                let frame = record_frame(seq as u64, rec.as_bytes());
                file.write_all(&frame)?;
                len += frame.len() as u64;
            }
            if !tail.is_empty() {
                file.sync_all()?;
            }
            Ok((file, len))
        })();
        let (file, len) = match built {
            Ok(v) => v,
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                return Err(e);
            }
        };
        if let Err(e) = std::fs::rename(&tmp, &self.path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e.into());
        }
        self.file = file;
        self.generation = next_gen;
        self.snapshot_crc = new_snapshot_crc;
        self.next_seq = tail.len() as u64;
        self.unsynced = 0;
        self.good_len = len;
        self.poisoned = false;
        self.tail = tail.to_vec();
        self.counters.rotations.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

fn segment_tmp_path(path: &Path) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(".rotate.tmp");
    PathBuf::from(s)
}

fn orphan_path(path: &Path, generation: u64) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(format!(".orphaned-g{generation}-p{}", std::process::id()));
    PathBuf::from(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(test: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pxml-wal-unit").join(test);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fsync_policy_grammar() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("os"), Ok(FsyncPolicy::Os));
        assert_eq!(FsyncPolicy::parse("batch:64"), Ok(FsyncPolicy::Batch(64)));
        assert!(FsyncPolicy::parse("batch:0").is_err());
        assert!(FsyncPolicy::parse("batch:x").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
        for p in [FsyncPolicy::Always, FsyncPolicy::Batch(7), FsyncPolicy::Os] {
            assert_eq!(FsyncPolicy::parse(&p.to_string()), Ok(p));
        }
    }

    #[test]
    fn append_recover_round_trip() {
        let dir = scratch("round_trip");
        let (mut wal, outcome, replay) =
            Wal::attach(&dir, "inst", 0xAB, FsyncPolicy::Always).unwrap();
        assert_eq!(outcome, AttachOutcome::Fresh);
        assert!(replay.is_empty());
        for i in 0..5 {
            wal.append(&format!("SETEDGE R B{i} PROB 0.5")).unwrap();
        }
        assert_eq!(wal.live_records().len(), 5);
        let seg = recover_segment(wal.path()).unwrap();
        assert_eq!(seg.generation, 1);
        assert_eq!(seg.snapshot_crc, 0xAB);
        assert!(!seg.torn);
        assert_eq!(seg.records.len(), 5);
        assert_eq!(seg.records[3], "SETEDGE R B3 PROB 0.5");
        assert_eq!(wal.counters().appends.load(Ordering::Relaxed), 5);
        assert!(wal.counters().fsyncs.load(Ordering::Relaxed) >= 5);
    }

    #[test]
    fn reattach_resumes_and_replays() {
        let dir = scratch("reattach");
        let (mut wal, _, _) = Wal::attach(&dir, "inst", 7, FsyncPolicy::Batch(2)).unwrap();
        wal.append("a").unwrap();
        wal.append("b").unwrap();
        drop(wal);
        let (mut wal, outcome, replay) =
            Wal::attach(&dir, "inst", 7, FsyncPolicy::Batch(2)).unwrap();
        assert_eq!(outcome, AttachOutcome::Resumed { records: 2, torn: false });
        assert_eq!(replay, vec!["a".to_string(), "b".to_string()]);
        // Appends continue the sequence; a second recovery sees all.
        wal.append("c").unwrap();
        drop(wal);
        let seg = recover_segment(&dir.join("inst.wal")).unwrap();
        assert_eq!(seg.records, vec!["a", "b", "c"]);
    }

    #[test]
    fn torn_tail_truncates_to_longest_valid_prefix() {
        let dir = scratch("torn");
        let (mut wal, _, _) = Wal::attach(&dir, "inst", 1, FsyncPolicy::Os).unwrap();
        for i in 0..4 {
            wal.append(&format!("op{i}")).unwrap();
        }
        let path = wal.path().to_path_buf();
        drop(wal);
        let seg = recover_segment(&path).unwrap();
        // Tear mid-way through record 2.
        let tear_at = seg.offsets[1] + 3;
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(tear_at as usize);
        std::fs::write(&path, &bytes).unwrap();
        let (mut wal, outcome, replay) =
            Wal::attach(&dir, "inst", 1, FsyncPolicy::Os).unwrap();
        assert_eq!(outcome, AttachOutcome::Resumed { records: 2, torn: true });
        assert_eq!(replay, vec!["op0", "op1"]);
        // The tear was physically truncated; new appends extend cleanly.
        wal.append("fresh").unwrap();
        wal.sync().unwrap();
        let seg = recover_segment(wal.path()).unwrap();
        assert!(!seg.torn);
        assert_eq!(seg.records, vec!["op0", "op1", "fresh"]);
    }

    #[test]
    fn snapshot_crc_mismatch_quarantines() {
        let dir = scratch("orphan");
        let (mut wal, _, _) = Wal::attach(&dir, "inst", 10, FsyncPolicy::Always).unwrap();
        wal.append("old-base op").unwrap();
        drop(wal);
        let (wal, outcome, replay) =
            Wal::attach(&dir, "inst", 11, FsyncPolicy::Always).unwrap();
        let AttachOutcome::Orphaned { quarantined } = outcome else {
            panic!("expected quarantine, got {outcome:?}");
        };
        assert!(quarantined.exists());
        assert!(replay.is_empty());
        // The fresh segment bumped past the quarantined generation.
        assert_eq!(wal.generation(), 2);
        let orphan = recover_segment(&quarantined).unwrap();
        assert_eq!(orphan.records, vec!["old-base op"]);
    }

    #[test]
    fn corrupt_header_quarantines() {
        let dir = scratch("bad_header");
        let (wal, _, _) = Wal::attach(&dir, "inst", 3, FsyncPolicy::Always).unwrap();
        let path = wal.path().to_path_buf();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[14] ^= 0xFF; // flip generation bits without fixing the header CRC
        std::fs::write(&path, &bytes).unwrap();
        assert!(recover_segment(&path).is_err());
        let (_, outcome, replay) = Wal::attach(&dir, "inst", 3, FsyncPolicy::Always).unwrap();
        assert!(matches!(outcome, AttachOutcome::Orphaned { .. }), "{outcome:?}");
        assert!(replay.is_empty());
    }

    #[test]
    fn rotation_starts_an_empty_segment_with_bumped_generation() {
        let dir = scratch("rotate");
        let (mut wal, _, _) = Wal::attach(&dir, "inst", 5, FsyncPolicy::Always).unwrap();
        wal.append("pre-checkpoint").unwrap();
        wal.rotate(6).unwrap();
        assert_eq!(wal.generation(), 2);
        assert!(wal.live_records().is_empty());
        wal.append("post-checkpoint").unwrap();
        drop(wal);
        let seg = recover_segment(&dir.join("inst.wal")).unwrap();
        assert_eq!(seg.generation, 2);
        assert_eq!(seg.snapshot_crc, 6);
        assert_eq!(seg.records, vec!["post-checkpoint"]);
        // Re-attach against the new base resumes the rotated segment.
        let (_, outcome, replay) = Wal::attach(&dir, "inst", 6, FsyncPolicy::Always).unwrap();
        assert_eq!(outcome, AttachOutcome::Resumed { records: 1, torn: false });
        assert_eq!(replay, vec!["post-checkpoint"]);
    }

    #[test]
    fn rotate_with_tail_rebinds_and_rejournals() {
        let dir = scratch("rebind");
        let (mut wal, _, _) = Wal::attach(&dir, "inst", 5, FsyncPolicy::Always).unwrap();
        wal.append("a").unwrap();
        wal.append("b").unwrap();
        assert_eq!(wal.snapshot_crc(), 5);
        // The snapshot moved (CRC 5 → 9): rebind the journal to it,
        // carrying the acknowledged tail into the fresh segment.
        let tail = wal.live_records().to_vec();
        wal.rotate_with_tail(9, &tail).unwrap();
        assert_eq!(wal.generation(), 2);
        assert_eq!(wal.snapshot_crc(), 9);
        assert_eq!(wal.live_records(), ["a", "b"]);
        // Appends continue the re-journalled sequence.
        wal.append("c").unwrap();
        drop(wal);
        let seg = recover_segment(&dir.join("inst.wal")).unwrap();
        assert_eq!(seg.snapshot_crc, 9);
        assert!(!seg.torn);
        assert_eq!(seg.records, vec!["a", "b", "c"]);
        // A reboot against the *new* base resumes — no quarantine.
        let (_, outcome, replay) = Wal::attach(&dir, "inst", 9, FsyncPolicy::Always).unwrap();
        assert_eq!(outcome, AttachOutcome::Resumed { records: 3, torn: false });
        assert_eq!(replay, vec!["a", "b", "c"]);
    }

    #[test]
    fn failed_append_residue_is_truncated_so_later_records_survive() {
        let dir = scratch("torn_middle");
        let (mut wal, _, _) = Wal::attach(&dir, "inst", 1, FsyncPolicy::Always).unwrap();
        wal.append("a").unwrap();
        wal.append("b").unwrap();
        // Simulate a torn write_all: partial frame bytes land in the
        // file, then the append error path rolls them back.
        wal.file.write_all(b"\x05\x00\x00\x00gar").unwrap();
        wal.rewind_to_good();
        assert!(!wal.is_poisoned());
        // Later appends extend the valid prefix — recovery must see
        // them (not stop dead at mid-file garbage).
        wal.append("c").unwrap();
        drop(wal);
        let seg = recover_segment(&dir.join("inst.wal")).unwrap();
        assert!(!seg.torn);
        assert_eq!(seg.records, vec!["a", "b", "c"]);
    }

    #[test]
    fn repair_is_idempotent_and_drops_a_panic_torn_frame() {
        let dir = scratch("repair");
        let (mut wal, _, _) = Wal::attach(&dir, "inst", 1, FsyncPolicy::Os).unwrap();
        wal.append("a").unwrap();
        wal.repair(); // clean segment: a no-op
        wal.file.write_all(b"half-a-frame").unwrap();
        wal.repair(); // panic-interrupted append: residue dropped
        wal.append("b").unwrap();
        wal.sync().unwrap();
        let seg = recover_segment(wal.path()).unwrap();
        assert!(!seg.torn);
        assert_eq!(seg.records, vec!["a", "b"]);
    }

    #[test]
    fn poisoned_segment_refuses_appends_until_rotation() {
        let dir = scratch("poison");
        let (mut wal, _, _) = Wal::attach(&dir, "inst", 1, FsyncPolicy::Always).unwrap();
        wal.append("a").unwrap();
        wal.poisoned = true;
        assert!(wal.append("lost-forever").is_err());
        assert!(wal.is_poisoned());
        // Rotation replaces the suspect file wholesale and clears it.
        wal.rotate(2).unwrap();
        assert!(!wal.is_poisoned());
        wal.append("b").unwrap();
        drop(wal);
        let seg = recover_segment(&dir.join("inst.wal")).unwrap();
        assert_eq!(seg.snapshot_crc, 2);
        assert_eq!(seg.records, vec!["b"]);
    }

    #[test]
    fn oversized_record_refused() {
        let dir = scratch("oversized");
        let (mut wal, _, _) = Wal::attach(&dir, "inst", 0, FsyncPolicy::Os).unwrap();
        let huge = "x".repeat(MAX_RECORD_BYTES as usize + 1);
        assert!(wal.append(&huge).is_err());
        // The refusal wrote nothing: the segment still recovers empty.
        drop(wal);
        let seg = recover_segment(&dir.join("inst.wal")).unwrap();
        assert!(seg.records.is_empty());
    }
}
