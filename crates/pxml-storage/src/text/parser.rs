//! Recursive-descent parser for the `.pxml` text format.

use std::collections::HashMap;
use std::sync::Arc;

use pxml_core::ids::{IdMap, ObjectKind};
use pxml_core::{
    Card, Catalog, ChildSet, ChildUniverse, LeafInfo, LeafType, ObjectId, Opf, OpfTable,
    ProbInstance, Value, Vpf, WeakInstance, WeakNode,
};

use crate::error::{Result, StorageError};
use crate::text::lexer::{lex, Tok, Token};
use crate::text::writer::TEXT_VERSION;

/// Parses the `.pxml` text format into a validated probabilistic instance.
pub fn from_text(input: &str) -> Result<ProbInstance> {
    let tokens = lex(input)?;
    Parser { tokens, pos: 0 }.file(true)
}

/// Parses the `.pxml` text format **without model validation** — the
/// diagnostic loader behind `pxml check`. Syntax and name resolution are
/// still enforced; coherence violations (unnormalised OPFs, unreachable
/// objects, …) are let through so `pxml_core::lint` can report them all.
pub fn from_text_unchecked(input: &str) -> Result<ProbInstance> {
    let tokens = lex(input)?;
    Parser { tokens, pos: 0 }.file(false)
}

/// Reads and parses a `.pxml` file.
pub fn read_text_file(path: &std::path::Path) -> Result<ProbInstance> {
    let text = std::fs::read_to_string(path)?;
    from_text(&text)
}

/// Reads a `.pxml` file without model validation (see
/// [`from_text_unchecked`]).
pub fn read_text_file_unchecked(path: &std::path::Path) -> Result<ProbInstance> {
    let text = std::fs::read_to_string(path)?;
    from_text_unchecked(&text)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Raw (unresolved) object declaration accumulated in the first pass.
#[derive(Default)]
struct RawObject {
    lch: Vec<(String, Vec<String>)>,
    cards: Vec<(String, u32, u32)>,
    opf: Option<Vec<(Vec<String>, f64)>>,
    leaf: Option<RawLeaf>,
}

struct RawLeaf {
    ty: String,
    val: Option<Value>,
    vpf: Option<Vec<(Value, f64)>>,
}

impl Parser {
    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        let line = self.tokens.get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |t| t.line);
        Err(StorageError::Parse { line, message: message.into() })
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Tok) -> Result<()> {
        match self.next() {
            Some(t) if t == *want => Ok(()),
            other => {
                self.pos -= 1;
                self.err(format!("expected {want:?}, found {other:?}"))
            }
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => {
                self.pos -= 1;
                self.err(format!("expected identifier, found {other:?}"))
            }
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<()> {
        let s = self.ident()?;
        if s == kw {
            Ok(())
        } else {
            self.pos -= 1;
            self.err(format!("expected keyword {kw:?}, found {s:?}"))
        }
    }

    fn string(&mut self) -> Result<String> {
        match self.next() {
            Some(Tok::Str(s)) => Ok(s),
            other => {
                self.pos -= 1;
                self.err(format!("expected string, found {other:?}"))
            }
        }
    }

    fn number(&mut self) -> Result<f64> {
        match self.next() {
            Some(Tok::Float(x)) => Ok(x),
            Some(Tok::Int(i)) => Ok(i as f64),
            other => {
                self.pos -= 1;
                self.err(format!("expected number, found {other:?}"))
            }
        }
    }

    fn integer(&mut self) -> Result<i64> {
        match self.next() {
            Some(Tok::Int(i)) => Ok(i),
            other => {
                self.pos -= 1;
                self.err(format!("expected integer, found {other:?}"))
            }
        }
    }

    /// `value := str STR | int INT | float NUM | bool (true|false)`
    fn value(&mut self) -> Result<Value> {
        let tag = self.ident()?;
        match tag.as_str() {
            "str" => Ok(Value::str(&self.string()?)),
            "int" => Ok(Value::Int(self.integer()?)),
            "float" => Ok(Value::Float(self.number()?)),
            "bool" => {
                let b = self.ident()?;
                match b.as_str() {
                    "true" => Ok(Value::Bool(true)),
                    "false" => Ok(Value::Bool(false)),
                    _ => self.err(format!("expected true/false, found {b:?}")),
                }
            }
            _ => self.err(format!("expected value tag, found {tag:?}")),
        }
    }

    fn file(&mut self, checked: bool) -> Result<ProbInstance> {
        self.keyword("pxml")?;
        let v = self.ident()?;
        let version: u32 = v
            .strip_prefix('v')
            .and_then(|n| n.parse().ok())
            .ok_or(StorageError::Parse { line: 1, message: format!("bad version {v:?}") })?;
        if version > TEXT_VERSION {
            return Err(StorageError::Version { found: version, supported: TEXT_VERSION });
        }

        // types { ... }
        let mut types: Vec<LeafType> = Vec::new();
        self.keyword("types")?;
        self.expect(&Tok::LBrace)?;
        while self.peek() != Some(&Tok::RBrace) {
            self.keyword("type")?;
            let name = self.string()?;
            self.expect(&Tok::LBrace)?;
            let mut domain = Vec::new();
            while self.peek() != Some(&Tok::RBrace) {
                domain.push(self.value()?);
                if self.peek() == Some(&Tok::Comma) {
                    self.next();
                }
            }
            self.expect(&Tok::RBrace)?;
            types.push(LeafType::new(name, domain));
        }
        self.expect(&Tok::RBrace)?;

        // instance root="R" { ... }
        self.keyword("instance")?;
        self.keyword("root")?;
        self.expect(&Tok::Eq)?;
        let root_name = self.string()?;
        self.expect(&Tok::LBrace)?;
        let mut objects: Vec<(String, RawObject)> = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            let kw = self.ident()?;
            match kw.as_str() {
                "object" => {
                    let name = self.string()?;
                    let raw = self.object_body()?;
                    objects.push((name, raw));
                }
                "leaf" => {
                    let name = self.string()?;
                    let raw = self.leaf_body()?;
                    objects.push((name, raw));
                }
                _ => {
                    self.pos -= 1;
                    return self.err(format!("expected object/leaf, found {kw:?}"));
                }
            }
        }
        self.expect(&Tok::RBrace)?;
        if self.pos != self.tokens.len() {
            return self.err("trailing input after instance");
        }

        resolve(types, &root_name, objects, checked)
    }

    fn object_body(&mut self) -> Result<RawObject> {
        let mut raw = RawObject::default();
        self.expect(&Tok::LBrace)?;
        while self.peek() != Some(&Tok::RBrace) {
            let kw = self.ident()?;
            match kw.as_str() {
                "lch" => {
                    let label = self.string()?;
                    self.expect(&Tok::Eq)?;
                    raw.lch.push((label, self.name_list()?));
                }
                "card" => {
                    let label = self.string()?;
                    self.expect(&Tok::Eq)?;
                    self.expect(&Tok::LBracket)?;
                    let min = self.integer()?;
                    self.expect(&Tok::Comma)?;
                    let max = self.integer()?;
                    self.expect(&Tok::RBracket)?;
                    if min < 0 || max < min {
                        return self.err(format!("bad cardinality [{min}, {max}]"));
                    }
                    raw.cards.push((label, min as u32, max as u32));
                }
                "opf" => {
                    self.expect(&Tok::LBrace)?;
                    let mut entries = Vec::new();
                    while self.peek() != Some(&Tok::RBrace) {
                        let names = self.name_list()?;
                        self.expect(&Tok::Colon)?;
                        entries.push((names, self.number()?));
                    }
                    self.expect(&Tok::RBrace)?;
                    raw.opf = Some(entries);
                }
                _ => {
                    self.pos -= 1;
                    return self.err(format!("expected lch/card/opf, found {kw:?}"));
                }
            }
        }
        self.expect(&Tok::RBrace)?;
        Ok(raw)
    }

    fn leaf_body(&mut self) -> Result<RawObject> {
        self.expect(&Tok::Colon)?;
        let ty = self.string()?;
        let val = if self.peek() == Some(&Tok::Eq) {
            self.next();
            Some(self.value()?)
        } else {
            None
        };
        self.expect(&Tok::LBrace)?;
        let mut vpf = None;
        while self.peek() != Some(&Tok::RBrace) {
            self.keyword("vpf")?;
            self.expect(&Tok::LBrace)?;
            let mut entries = Vec::new();
            while self.peek() != Some(&Tok::RBrace) {
                let v = self.value()?;
                self.expect(&Tok::Colon)?;
                entries.push((v, self.number()?));
            }
            self.expect(&Tok::RBrace)?;
            vpf = Some(entries);
        }
        self.expect(&Tok::RBrace)?;
        Ok(RawObject { leaf: Some(RawLeaf { ty, val, vpf }), ..RawObject::default() })
    }

    /// `[ "A", "B" ]` (possibly empty).
    fn name_list(&mut self) -> Result<Vec<String>> {
        self.expect(&Tok::LBracket)?;
        let mut out = Vec::new();
        while self.peek() != Some(&Tok::RBracket) {
            out.push(self.string()?);
            if self.peek() == Some(&Tok::Comma) {
                self.next();
            }
        }
        self.expect(&Tok::RBracket)?;
        Ok(out)
    }
}

/// Second pass: resolve names to ids and build the instance — validated
/// when `checked`, assembled leniently for diagnostics otherwise.
fn resolve(
    types: Vec<LeafType>,
    root_name: &str,
    objects: Vec<(String, RawObject)>,
    checked: bool,
) -> Result<ProbInstance> {
    let mut catalog = Catalog::new();
    for ty in types {
        catalog.define_type(ty);
    }
    // Intern objects in declaration order so ids are stable/predictable.
    let mut oid: HashMap<String, ObjectId> = HashMap::new();
    for (name, _) in &objects {
        oid.insert(name.clone(), catalog.object(name));
    }
    // Referenced-but-undeclared children are an error (the model requires
    // every object in V to be declared).
    let root = *oid.get(root_name).ok_or(StorageError::Parse {
        line: 0,
        message: format!("root {root_name:?} is not declared"),
    })?;

    let mut nodes: IdMap<ObjectKind, WeakNode> = IdMap::new();
    let mut opfs: IdMap<ObjectKind, Opf> = IdMap::new();
    let mut vpfs: IdMap<ObjectKind, Vpf> = IdMap::new();

    for (name, raw) in &objects {
        let id = oid[name];
        if let Some(leaf) = &raw.leaf {
            let ty = catalog.find_type(&leaf.ty).ok_or(StorageError::Parse {
                line: 0,
                message: format!("unknown type {:?} for leaf {name:?}", leaf.ty),
            })?;
            nodes.insert(
                id,
                WeakNode::from_parts(
                    ChildUniverse::new(),
                    Vec::new(),
                    Some(LeafInfo { ty, val: leaf.val.clone() }),
                ),
            );
            if let Some(entries) = &leaf.vpf {
                vpfs.insert(id, Vpf::from_entries(entries.iter().cloned()));
            } else if let Some(v) = &leaf.val {
                vpfs.insert(id, Vpf::point(v.clone()));
            }
        } else {
            let mut universe = ChildUniverse::new();
            for (label, children) in &raw.lch {
                let l = catalog.label(label);
                for child in children {
                    let c = *oid.get(child).ok_or(StorageError::Parse {
                        line: 0,
                        message: format!("child {child:?} of {name:?} is not declared"),
                    })?;
                    universe.push(c, l);
                }
            }
            let cards: Vec<(pxml_core::Label, Card)> = raw
                .cards
                .iter()
                .map(|(label, min, max)| (catalog.label(label), Card::new(*min, *max)))
                .collect();
            if let Some(entries) = &raw.opf {
                let mut table = OpfTable::new();
                for (names, p) in entries {
                    let ids: Option<Vec<ObjectId>> =
                        names.iter().map(|n| oid.get(n).copied()).collect();
                    let ids = ids.ok_or(StorageError::Parse {
                        line: 0,
                        message: format!("OPF of {name:?} references an undeclared object"),
                    })?;
                    let set = ChildSet::from_objects(&universe, ids).ok_or(
                        StorageError::Parse {
                            line: 0,
                            message: format!("OPF of {name:?} references a non-child"),
                        },
                    )?;
                    table.add(set, *p);
                }
                opfs.insert(id, Opf::Table(table));
            }
            nodes.insert(id, WeakNode::from_parts(universe, cards, None));
        }
    }

    if checked {
        let weak = WeakInstance::from_parts(Arc::new(catalog), root, nodes)?;
        Ok(ProbInstance::from_parts(weak, opfs, vpfs)?)
    } else {
        let weak = WeakInstance::from_parts_unchecked(Arc::new(catalog), root, nodes);
        Ok(ProbInstance::from_parts_unchecked(weak, opfs, vpfs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::writer::to_text;
    use pxml_core::fixtures::{chain, diamond, fig2_instance};
    use pxml_core::enumerate_worlds;

    /// Semantic equality by names: same worlds with the same probabilities
    /// when both instances are rendered through their own catalogs.
    fn same_distribution(a: &ProbInstance, b: &ProbInstance) {
        let wa = enumerate_worlds(a).unwrap();
        let wb = enumerate_worlds(b).unwrap();
        assert_eq!(wa.len(), wb.len());
        // Compare via the deterministic text rendering of each world set:
        // match worlds by their rendered string.
        let mut map = std::collections::HashMap::new();
        for (s, p) in wa.iter() {
            *map.entry(s.render()).or_insert(0.0) += p;
        }
        for (s, p) in wb.iter() {
            let q = map.get(&s.render()).copied().unwrap_or(-1.0);
            assert!((q - p).abs() < 1e-9, "world mismatch:\n{}", s.render());
        }
    }

    #[test]
    fn fig2_round_trips() {
        let pi = fig2_instance();
        let text = to_text(&pi);
        let parsed = from_text(&text).unwrap();
        same_distribution(&pi, &parsed);
        // And the re-rendered text is a fixed point.
        assert_eq!(to_text(&parsed), to_text(&from_text(&to_text(&parsed)).unwrap()));
    }

    #[test]
    fn chain_and_diamond_round_trip() {
        for pi in [chain(3, 0.37), diamond()] {
            let parsed = from_text(&to_text(&pi)).unwrap();
            same_distribution(&pi, &parsed);
        }
    }

    #[test]
    fn unknown_root_is_rejected() {
        let text = "pxml v1\ntypes { }\ninstance root=\"Z\" { object \"R\" { } }";
        assert!(matches!(from_text(text), Err(StorageError::Parse { .. })));
    }

    #[test]
    fn undeclared_child_is_rejected() {
        let text =
            "pxml v1\ntypes { }\ninstance root=\"R\" { object \"R\" { lch \"x\" = [\"ghost\"] } }";
        assert!(matches!(from_text(text), Err(StorageError::Parse { .. })));
    }

    #[test]
    fn future_version_is_rejected() {
        let text = "pxml v99\ntypes { }\ninstance root=\"R\" { object \"R\" { } }";
        assert!(matches!(from_text(text), Err(StorageError::Version { .. })));
    }

    #[test]
    fn invalid_probabilities_fail_model_validation() {
        let text = r#"pxml v1
types { }
instance root="R" {
  object "R" {
    lch "x" = ["A"]
    opf { ["A"] : 0.4 }
  }
  object "A" { }
}"#;
        assert!(matches!(from_text(text), Err(StorageError::Core(_))));
    }

    #[test]
    fn parse_reports_line_numbers() {
        let text = "pxml v1\ntypes { }\ninstance root=\"R\" {\n  object \"R\" {\n    bogus\n  }\n}";
        match from_text(text) {
            Err(StorageError::Parse { line, .. }) => assert_eq!(line, 5),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn comments_and_whitespace_are_tolerated() {
        let text = r#"
pxml v1
# a comment
types { }
instance root="R" {
  object "R" { } # trailing comment
}
"#;
        let pi = from_text(text).unwrap();
        assert_eq!(pi.object_count(), 1);
    }
}
