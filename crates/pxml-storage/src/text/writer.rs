//! The text writer: serialises a probabilistic instance into the
//! human-readable `.pxml` format (a direct transcription of the tables
//! in the paper's Figure 2).

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

use pxml_core::{ProbInstance, Value};

use crate::error::Result;

/// Current text-format version.
pub const TEXT_VERSION: u32 = 1;

/// Renders an instance to a string in `.pxml` text format.
///
/// The output is deterministic: objects in id order, OPF entries in table
/// order, domains in canonical value order.
pub fn to_text(pi: &ProbInstance) -> String {
    let mut out = String::new();
    let cat = pi.catalog();
    let _ = writeln!(out, "pxml v{TEXT_VERSION}");

    // Types.
    let _ = writeln!(out, "types {{");
    for (_, def) in cat.types().iter() {
        let domain: Vec<String> = def.domain().iter().map(fmt_value).collect();
        let _ = writeln!(out, "  type {:?} {{ {} }}", def.name(), domain.join(", "));
    }
    let _ = writeln!(out, "}}");

    // Instance body.
    let root_name = cat.object_name(pi.root());
    let _ = writeln!(out, "instance root={root_name:?} {{");
    for o in pi.objects() {
        let Some(node) = pi.weak().node(o) else { continue };
        let name = cat.object_name(o);
        if let Some(leaf) = node.leaf() {
            let ty = cat.type_def(leaf.ty);
            let _ = write!(out, "  leaf {:?} : {:?}", name, ty.name());
            if let Some(v) = &leaf.val {
                let _ = write!(out, " = {}", fmt_value(v));
            }
            let _ = writeln!(out, " {{");
            if let Some(vpf) = pi.vpf(o) {
                let _ = writeln!(out, "    vpf {{");
                for (v, p) in vpf.iter() {
                    let _ = writeln!(out, "      {} : {:?}", fmt_value(v), p);
                }
                let _ = writeln!(out, "    }}");
            }
            let _ = writeln!(out, "  }}");
        } else {
            let _ = writeln!(out, "  object {name:?} {{");
            for l in node.labels() {
                let kids: Vec<String> =
                    node.lch(l).map(|c| format!("{:?}", cat.object_name(c))).collect();
                let _ = writeln!(
                    out,
                    "    lch {:?} = [{}]",
                    cat.label_name(l),
                    kids.join(", ")
                );
            }
            for &(l, card) in node.cards() {
                let _ = writeln!(
                    out,
                    "    card {:?} = [{}, {}]",
                    cat.label_name(l),
                    card.min,
                    card.max
                );
            }
            if let Some(opf) = pi.opf(o) {
                let table = opf.to_table(node.universe());
                let _ = writeln!(out, "    opf {{");
                for (set, p) in table.iter() {
                    let members: Vec<String> = set
                        .positions()
                        .map(|pos| format!("{:?}", cat.object_name(node.universe().object_at(pos))))
                        .collect();
                    let _ = writeln!(out, "      [{}] : {:?}", members.join(", "), p);
                }
                let _ = writeln!(out, "    }}");
            }
            let _ = writeln!(out, "  }}");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Writes an instance to a file in text format **atomically**, returning
/// the number of bytes written (the quantity that dominates Figure 7(c)'s
/// totals). Like [`crate::write_binary_file`], bytes go to a temp file in
/// the destination directory, are fsynced, and are renamed over `path` —
/// a crash leaves either the old file or the complete new one.
pub fn write_text_file(pi: &ProbInstance, path: &Path) -> Result<usize> {
    let text = to_text(pi);
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "instance.pxml".into());
    let tmp = dir.join(format!(".{name}.{}.tmp", std::process::id()));
    let write_and_sync = || -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()
    };
    if let Err(e) = write_and_sync().and_then(|()| std::fs::rename(&tmp, path)) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    Ok(text.len())
}

/// Formats a value with an explicit type tag so parsing is unambiguous.
pub(crate) fn fmt_value(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("str {:?}", &**s),
        Value::Int(i) => format!("int {i}"),
        Value::Float(x) => format!("float {x:?}"),
        Value::Bool(b) => format!("bool {b}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_core::fixtures::fig2_instance;

    #[test]
    fn text_contains_figure2_tables() {
        let txt = to_text(&fig2_instance());
        assert!(txt.starts_with("pxml v1"));
        assert!(txt.contains("lch \"book\" = [\"B1\", \"B2\", \"B3\"]"));
        assert!(txt.contains("card \"book\" = [2, 3]"));
        assert!(txt.contains("[\"B1\", \"B2\", \"B3\"] : 0.4"));
        assert!(txt.contains("leaf \"T1\" : \"title-type\""));
        assert!(txt.contains("str \"VQDB\" : 0.4"));
    }

    #[test]
    fn output_is_deterministic() {
        assert_eq!(to_text(&fig2_instance()), to_text(&fig2_instance()));
    }

    #[test]
    fn write_returns_byte_count() {
        let dir = std::env::temp_dir().join("pxml-writer-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig2.pxml");
        let n = write_text_file(&fig2_instance(), &path).unwrap();
        assert_eq!(n as u64, std::fs::metadata(&path).unwrap().len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn values_format_with_type_tags() {
        assert_eq!(fmt_value(&Value::str("x")), "str \"x\"");
        assert_eq!(fmt_value(&Value::Int(-3)), "int -3");
        assert_eq!(fmt_value(&Value::Bool(true)), "bool true");
        assert_eq!(fmt_value(&Value::Float(0.5)), "float 0.5");
    }
}
