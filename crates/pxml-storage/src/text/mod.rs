//! The human-readable `.pxml` text format.

pub mod lexer;
pub mod parser;
pub mod writer;
