//! Tokeniser for the `.pxml` text format.

use crate::error::{Result, StorageError};

/// A token with its source line (1-based).
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token payload.
    pub kind: Tok,
    /// 1-based source line, for error messages.
    pub line: usize,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Bare identifier/keyword (`pxml`, `object`, `str`, `true`, …).
    Ident(String),
    /// Double-quoted string with `\"`/`\\` escapes.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal (contains `.`, `e` or `E`).
    Float(f64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `=`
    Eq,
    /// `:`
    Colon,
    /// `,`
    Comma,
}

/// Tokenises the whole input. `#` starts a comment until end of line.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let mut chars = input.char_indices().peekable();
    let mut line = 1usize;
    while let Some(&(start, c)) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                for (_, c2) in chars.by_ref() {
                    if c2 == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '{' => {
                out.push(Token { kind: Tok::LBrace, line });
                chars.next();
            }
            '}' => {
                out.push(Token { kind: Tok::RBrace, line });
                chars.next();
            }
            '[' => {
                out.push(Token { kind: Tok::LBracket, line });
                chars.next();
            }
            ']' => {
                out.push(Token { kind: Tok::RBracket, line });
                chars.next();
            }
            '=' => {
                out.push(Token { kind: Tok::Eq, line });
                chars.next();
            }
            ':' => {
                out.push(Token { kind: Tok::Colon, line });
                chars.next();
            }
            ',' => {
                out.push(Token { kind: Tok::Comma, line });
                chars.next();
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                let mut closed = false;
                while let Some((_, c2)) = chars.next() {
                    match c2 {
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\\' => match chars.next() {
                            Some((_, '"')) => s.push('"'),
                            Some((_, '\\')) => s.push('\\'),
                            Some((_, 'n')) => s.push('\n'),
                            Some((_, 't')) => s.push('\t'),
                            other => {
                                return Err(StorageError::Lex {
                                    line,
                                    message: format!("bad escape {other:?}"),
                                })
                            }
                        },
                        '\n' => {
                            return Err(StorageError::Lex {
                                line,
                                message: "unterminated string".into(),
                            })
                        }
                        c2 => s.push(c2),
                    }
                }
                if !closed {
                    return Err(StorageError::Lex { line, message: "unterminated string".into() });
                }
                out.push(Token { kind: Tok::Str(s), line });
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' => {
                let mut text = String::new();
                let mut is_float = false;
                while let Some(&(_, c2)) = chars.peek() {
                    if c2.is_ascii_digit() || c2 == '-' || c2 == '+' {
                        text.push(c2);
                        chars.next();
                    } else if c2 == '.' || c2 == 'e' || c2 == 'E' {
                        is_float = true;
                        text.push(c2);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let kind = if is_float {
                    Tok::Float(text.parse::<f64>().map_err(|e| StorageError::Lex {
                        line,
                        message: format!("bad float {text:?}: {e}"),
                    })?)
                } else {
                    Tok::Int(text.parse::<i64>().map_err(|e| StorageError::Lex {
                        line,
                        message: format!("bad integer {text:?}: {e}"),
                    })?)
                };
                out.push(Token { kind, line });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&(_, c2)) = chars.peek() {
                    if c2.is_alphanumeric() || c2 == '_' {
                        s.push(c2);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token { kind: Tok::Ident(s), line });
            }
            other => {
                let _ = start;
                return Err(StorageError::Lex {
                    line,
                    message: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<Tok> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_punctuation_and_idents() {
        assert_eq!(
            kinds("opf { [\"A\"] : 0.5 }"),
            vec![
                Tok::Ident("opf".into()),
                Tok::LBrace,
                Tok::LBracket,
                Tok::Str("A".into()),
                Tok::RBracket,
                Tok::Colon,
                Tok::Float(0.5),
                Tok::RBrace,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("42 -7 0.25 1e-3"), vec![
            Tok::Int(42),
            Tok::Int(-7),
            Tok::Float(0.25),
            Tok::Float(1e-3),
        ]);
    }

    #[test]
    fn string_escapes_round_trip() {
        assert_eq!(kinds(r#""a\"b\\c""#), vec![Tok::Str("a\"b\\c".into())]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(kinds("a # comment\nb"), vec![
            Tok::Ident("a".into()),
            Tok::Ident("b".into())
        ]);
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = lex("a\nb\n  c").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(lex("\"oops"), Err(StorageError::Lex { .. })));
    }

    #[test]
    fn bad_character_errors() {
        assert!(matches!(lex("a ~ b"), Err(StorageError::Lex { .. })));
    }
}
