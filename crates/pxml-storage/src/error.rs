//! Error types for persistence.

use std::fmt;

use pxml_core::CoreError;

/// Errors raised while reading or writing instances.
#[derive(Debug)]
#[allow(missing_docs)] // variant payload fields are self-describing
pub enum StorageError {
    /// An I/O failure.
    Io(std::io::Error),
    /// The text input failed to tokenise.
    Lex { line: usize, message: String },
    /// The text input failed to parse.
    Parse { line: usize, message: String },
    /// The binary input is malformed.
    Binary(String),
    /// The instance cannot be encoded (e.g. it references objects outside
    /// its own vertex set, as `from_parts_unchecked` instances can).
    Encode(String),
    /// The decoded instance failed model validation.
    Core(CoreError),
    /// Unsupported format version.
    Version { found: u32, supported: u32 },
    /// The binary payload fails its CRC-32 footer check — the file was
    /// corrupted (torn write, bit rot, truncation that happened to keep
    /// the footer shape).
    Corrupt { expected: u32, actual: u32 },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::Lex { line, message } => write!(f, "lex error at line {line}: {message}"),
            StorageError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            StorageError::Binary(m) => write!(f, "binary decode error: {m}"),
            StorageError::Encode(m) => write!(f, "encode error: {m}"),
            StorageError::Core(e) => write!(f, "decoded instance is invalid: {e}"),
            StorageError::Version { found, supported } => {
                write!(f, "format version {found} unsupported (this build reads ≤ {supported})")
            }
            StorageError::Corrupt { expected, actual } => write!(
                f,
                "checksum mismatch: footer says {expected:#010x}, payload hashes to {actual:#010x} — file is corrupt"
            ),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}
impl From<CoreError> for StorageError {
    fn from(e: CoreError) -> Self {
        StorageError::Core(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T, E = StorageError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_positions() {
        let e = StorageError::Parse { line: 7, message: "expected '{'".into() };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn conversions() {
        let e: StorageError = CoreError::MissingRoot.into();
        assert!(matches!(e, StorageError::Core(_)));
        let e: StorageError =
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
