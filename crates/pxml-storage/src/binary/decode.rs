//! Binary decoder with full bounds checking.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pxml_core::ids::{IdMap, ObjectKind};
use pxml_core::{
    Card, Catalog, ChildSet, ChildUniverse, Label, LeafInfo, LeafType, ObjectId, Opf, OpfTable,
    ProbInstance, TypeId, Value, Vpf, WeakInstance, WeakNode,
};

use crate::binary::encode::{BINARY_VERSION, FOOTER_MAGIC, MAGIC};
use crate::crc::crc32;
use crate::error::{Result, StorageError};

/// Process-wide count of CRC-32 footer verifications performed (strict
/// and lenient loads alike). Observability only — see
/// [`crc_verifications`].
static CRC_VERIFICATIONS: AtomicU64 = AtomicU64::new(0);

/// How many `.pxmlb` CRC-32 footer verifications this process has
/// performed (each one hashed a whole payload and compared it against
/// the stored footer). Exported as the
/// `pxml_storage_crc_verifications_total` metric.
pub fn crc_verifications() -> u64 {
    CRC_VERIFICATIONS.load(Ordering::Relaxed)
}

/// Hashes `payload` for footer verification, counting the verification.
fn verified_crc(payload: &[u8]) -> u32 {
    CRC_VERIFICATIONS.fetch_add(1, Ordering::Relaxed);
    crc32(payload)
}

/// Decodes an instance from its binary encoding, validating it.
///
/// The CRC-32 integrity footer (when present) is verified first; a
/// mismatch fails with [`StorageError::Corrupt`] before any structural
/// decoding. Footer-less payloads from older builds decode normally.
pub fn from_binary(bytes: &[u8]) -> Result<ProbInstance> {
    let payload = verify_footer(bytes)?;
    let (catalog, root, nodes, opfs, vpfs) = decode_parts(payload)?;
    let weak = WeakInstance::from_parts(Arc::new(catalog), root, nodes)?;
    Ok(ProbInstance::from_parts(weak, opfs, vpfs)?)
}

/// Decodes an instance **without model validation** — the diagnostic
/// loader behind `pxml check`. Structural bounds checks (indices, counts,
/// UTF-8, the CRC footer) still apply, but coherence violations
/// (unnormalised OPFs, unsatisfiable cards, unreachable objects, …) are
/// let through so `pxml_core::lint` can report all of them instead of
/// failing on the first.
pub fn from_binary_unchecked(bytes: &[u8]) -> Result<ProbInstance> {
    let payload = verify_footer(bytes)?;
    decode_parts_unchecked(payload)
}

/// A CRC footer that did not match its payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChecksumMismatch {
    /// The CRC-32 stored in the footer.
    pub expected: u32,
    /// The CRC-32 the payload actually hashes to.
    pub actual: u32,
}

/// Result of [`from_binary_lenient`]: an instance decoded without model
/// validation, plus the checksum verdict.
#[derive(Debug)]
pub struct LenientBinary {
    /// The decoded (unvalidated) instance.
    pub instance: ProbInstance,
    /// `Some` when the file carried a footer whose CRC did not match —
    /// the bytes are corrupt even though they happened to decode.
    pub checksum_mismatch: Option<ChecksumMismatch>,
}

/// Decodes an instance for diagnosis even when its checksum fails.
///
/// Where [`from_binary_unchecked`] refuses a corrupt file outright, this
/// loader attempts the structural decode anyway and reports the mismatch
/// in [`LenientBinary::checksum_mismatch`], so `pxml check` can show what
/// the damaged file *contains* alongside the corruption diagnostic.
/// Structural decode failures (truncation, bad indices) still error.
pub fn from_binary_lenient(bytes: &[u8]) -> Result<LenientBinary> {
    let (payload, stored) = split_footer(bytes);
    let checksum_mismatch = stored.and_then(|expected| {
        let actual = verified_crc(payload);
        (actual != expected).then_some(ChecksumMismatch { expected, actual })
    });
    let instance = decode_parts_unchecked(payload)?;
    Ok(LenientBinary { instance, checksum_mismatch })
}

fn decode_parts_unchecked(payload: &[u8]) -> Result<ProbInstance> {
    let (catalog, root, nodes, opfs, vpfs) = decode_parts(payload)?;
    let weak = WeakInstance::from_parts_unchecked(Arc::new(catalog), root, nodes);
    Ok(ProbInstance::from_parts_unchecked(weak, opfs, vpfs))
}

/// Splits the 8-byte integrity footer off `bytes`, if one is present.
/// Returns the payload and the stored CRC (`None` for footer-less legacy
/// payloads).
fn split_footer(bytes: &[u8]) -> (&[u8], Option<u32>) {
    let Some(footer_at) = bytes.len().checked_sub(8) else { return (bytes, None) };
    if &bytes[footer_at..footer_at + 4] != FOOTER_MAGIC {
        return (bytes, None);
    }
    let crc = u32::from_le_bytes([
        bytes[footer_at + 4],
        bytes[footer_at + 5],
        bytes[footer_at + 6],
        bytes[footer_at + 7],
    ]);
    (&bytes[..footer_at], Some(crc))
}

/// Verifies the footer (when present) and returns the payload.
fn verify_footer(bytes: &[u8]) -> Result<&[u8]> {
    let (payload, stored) = split_footer(bytes);
    if let Some(expected) = stored {
        let actual = verified_crc(payload);
        if actual != expected {
            return Err(StorageError::Corrupt { expected, actual });
        }
    }
    Ok(payload)
}

type DecodedParts =
    (Catalog, ObjectId, IdMap<ObjectKind, WeakNode>, IdMap<ObjectKind, Opf>, IdMap<ObjectKind, Vpf>);

/// Shared structural decode: everything up to (but excluding) model
/// validation. Every count is checked against the bytes actually
/// remaining before it sizes an allocation, so a corrupt header cannot
/// trigger a huge preallocation.
fn decode_parts(bytes: &[u8]) -> Result<DecodedParts> {
    let mut r = Reader { bytes, pos: 0 };
    let magic = r.take(8)?;
    if magic != MAGIC {
        return Err(StorageError::Binary("bad magic".into()));
    }
    let version = r.u32()?;
    if version > BINARY_VERSION {
        return Err(StorageError::Version { found: version, supported: BINARY_VERSION });
    }

    let mut catalog = Catalog::new();
    // Objects.
    let n_objects = r.u32()? as usize;
    r.check_count(n_objects, "object count")?;
    let mut ids: Vec<ObjectId> = Vec::with_capacity(n_objects);
    for _ in 0..n_objects {
        let name = r.string()?;
        ids.push(catalog.object(&name));
    }
    // Labels.
    let n_labels = r.u32()? as usize;
    r.check_count(n_labels, "label count")?;
    let mut labels: Vec<Label> = Vec::with_capacity(n_labels);
    for _ in 0..n_labels {
        let name = r.string()?;
        labels.push(catalog.label(&name));
    }
    // Types.
    let n_types = r.u32()? as usize;
    r.check_count(n_types, "type count")?;
    let mut types: Vec<TypeId> = Vec::with_capacity(n_types);
    for _ in 0..n_types {
        let name = r.string()?;
        let n_dom = r.u32()? as usize;
        r.check_count(n_dom, "domain size")?;
        let mut domain = Vec::with_capacity(n_dom);
        for _ in 0..n_dom {
            domain.push(r.value()?);
        }
        types.push(catalog.define_type(LeafType::new(name, domain)));
    }
    let root_idx = r.u32()? as usize;
    let root = *ids.get(root_idx).ok_or_else(|| StorageError::Binary("bad root index".into()))?;

    let object_at = |idx: u32| -> Result<ObjectId> {
        ids.get(idx as usize)
            .copied()
            .ok_or_else(|| StorageError::Binary(format!("object index {idx} out of range")))
    };
    let label_at = |idx: u32| -> Result<Label> {
        labels
            .get(idx as usize)
            .copied()
            .ok_or_else(|| StorageError::Binary(format!("label index {idx} out of range")))
    };
    let type_at = |idx: u32| -> Result<TypeId> {
        types
            .get(idx as usize)
            .copied()
            .ok_or_else(|| StorageError::Binary(format!("type index {idx} out of range")))
    };

    let mut nodes: IdMap<ObjectKind, WeakNode> = IdMap::new();
    let mut opfs: IdMap<ObjectKind, Opf> = IdMap::new();
    let mut vpfs: IdMap<ObjectKind, Vpf> = IdMap::new();

    for &id in &ids {
        // Universe.
        let n = r.u32()? as usize;
        r.check_count(n, "universe size")?;
        let mut universe = ChildUniverse::new();
        for _ in 0..n {
            let child = object_at(r.u32()?)?;
            let label = label_at(r.u32()?)?;
            universe.push(child, label);
        }
        // Cards.
        let n_cards = r.u32()? as usize;
        r.check_count(n_cards, "card count")?;
        let mut cards = Vec::with_capacity(n_cards);
        for _ in 0..n_cards {
            let l = label_at(r.u32()?)?;
            let min = r.u32()?;
            let max = r.u32()?;
            if min > max {
                return Err(StorageError::Binary(format!("card [{min},{max}] inverted")));
            }
            cards.push((l, Card::new(min, max)));
        }
        // Leaf.
        let leaf = if r.u8()? == 1 {
            let ty = type_at(r.u32()?)?;
            let val = if r.u8()? == 1 { Some(r.value()?) } else { None };
            Some(LeafInfo { ty, val })
        } else {
            None
        };
        // OPF.
        if r.u8()? == 1 {
            let n_entries = r.u32()? as usize;
            r.check_count(n_entries, "OPF size")?;
            let mut table = OpfTable::new();
            for _ in 0..n_entries {
                let n_pos = r.u32()? as usize;
                if n_pos > universe.len() {
                    return Err(StorageError::Binary("child set larger than universe".into()));
                }
                r.check_count(n_pos, "child set size")?;
                let mut positions = Vec::with_capacity(n_pos);
                for _ in 0..n_pos {
                    let pos = r.u32()?;
                    if pos as usize >= universe.len() {
                        return Err(StorageError::Binary(format!(
                            "position {pos} outside universe"
                        )));
                    }
                    positions.push(pos);
                }
                let set = ChildSet::from_positions(&universe, positions);
                table.add(set, r.f64()?);
            }
            opfs.insert(id, Opf::Table(table));
        }
        // VPF.
        if r.u8()? == 1 {
            let n_entries = r.u32()? as usize;
            r.check_count(n_entries, "VPF size")?;
            let mut vpf = Vpf::new();
            for _ in 0..n_entries {
                let v = r.value()?;
                vpf.set(v, r.f64()?);
            }
            vpfs.insert(id, vpf);
        }
        nodes.insert(id, WeakNode::from_parts(universe, cards, leaf));
    }
    if r.pos != bytes.len() {
        return Err(StorageError::Binary(format!(
            "{} trailing bytes after instance",
            bytes.len() - r.pos
        )));
    }

    Ok((catalog, root, nodes, opfs, vpfs))
}

/// Reads a binary `.pxmlb` file.
pub fn read_binary_file(path: &std::path::Path) -> Result<ProbInstance> {
    let bytes = std::fs::read(path)?;
    from_binary(&bytes)
}

/// Reads a binary `.pxmlb` file without model validation (see
/// [`from_binary_unchecked`]).
pub fn read_binary_file_unchecked(path: &std::path::Path) -> Result<ProbInstance> {
    let bytes = std::fs::read(path)?;
    from_binary_unchecked(&bytes)
}

/// Reads a binary `.pxmlb` file leniently (see [`from_binary_lenient`]).
pub fn read_binary_file_lenient(path: &std::path::Path) -> Result<LenientBinary> {
    let bytes = std::fs::read(path)?;
    from_binary_lenient(&bytes)
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        // `pos + n` can overflow on adversarial 64-bit counts; the
        // checked form turns that into the same truncation error.
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| StorageError::Binary("unexpected end of input".into()))?;
        if end > self.bytes.len() {
            return Err(StorageError::Binary("unexpected end of input".into()));
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Bytes left after the cursor.
    fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }

    /// Rejects element counts that exceed the remaining input, so a
    /// corrupt count can never size an allocation beyond the input itself
    /// (every encoded element occupies at least one byte).
    fn check_count(&self, n: usize, what: &str) -> Result<()> {
        if n > self.remaining() {
            return Err(StorageError::Binary(format!(
                "{what} {n} exceeds the {} remaining input bytes",
                self.remaining()
            )));
        }
        Ok(())
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn i64(&mut self) -> Result<i64> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn f64(&mut self) -> Result<f64> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StorageError::Binary("invalid UTF-8 in string".into()))
    }

    fn value(&mut self) -> Result<Value> {
        match self.u8()? {
            0 => Ok(Value::str(&self.string()?)),
            1 => Ok(Value::Int(self.i64()?)),
            2 => Ok(Value::Float(self.f64()?)),
            3 => Ok(Value::Bool(self.u8()? == 1)),
            tag => Err(StorageError::Binary(format!("unknown value tag {tag}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::encode::to_binary;
    use pxml_core::enumerate_worlds;
    use pxml_core::fixtures::{chain, diamond, fig2_instance};

    fn same_distribution(a: &ProbInstance, b: &ProbInstance) {
        let wa = enumerate_worlds(a).unwrap();
        let wb = enumerate_worlds(b).unwrap();
        assert_eq!(wa.len(), wb.len());
        let mut map = std::collections::HashMap::new();
        for (s, p) in wa.iter() {
            *map.entry(s.render()).or_insert(0.0) += p;
        }
        for (s, p) in wb.iter() {
            let q = map.get(&s.render()).copied().unwrap_or(-1.0);
            assert!((q - p).abs() < 1e-9);
        }
    }

    #[test]
    fn fig2_round_trips_binary() {
        let pi = fig2_instance();
        let decoded = from_binary(&to_binary(&pi).unwrap()).unwrap();
        same_distribution(&pi, &decoded);
    }

    #[test]
    fn chain_and_diamond_round_trip_binary() {
        for pi in [chain(4, 0.51), diamond()] {
            let decoded = from_binary(&to_binary(&pi).unwrap()).unwrap();
            same_distribution(&pi, &decoded);
        }
    }

    #[test]
    fn double_round_trip_is_byte_identical() {
        let pi = fig2_instance();
        let once = to_binary(&pi).unwrap();
        let twice = to_binary(&from_binary(&once).unwrap()).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(matches!(
            from_binary(b"NOTPXML0rest"),
            Err(StorageError::Binary(_))
        ));
    }

    #[test]
    fn truncated_input_is_rejected() {
        let bytes = to_binary(&fig2_instance()).unwrap();
        for cut in [10, 50, bytes.len() - 1] {
            assert!(from_binary(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn corrupted_probability_fails_validation() {
        let mut bytes = to_binary(&chain(1, 0.5)).unwrap().to_vec();
        // Flip a byte near the end (inside an f64 probability).
        let n = bytes.len();
        bytes[n - 3] ^= 0xff;
        assert!(from_binary(&bytes).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = to_binary(&chain(1, 0.5)).unwrap().to_vec();
        bytes.push(0);
        assert!(matches!(from_binary(&bytes), Err(StorageError::Binary(_))));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = to_binary(&chain(1, 0.5)).unwrap().to_vec();
        bytes[8] = 0xff; // bump the version field
        // Re-seal the footer so the version check (not the CRC) fires.
        let payload_len = bytes.len() - 8;
        let crc = crate::crc::crc32(&bytes[..payload_len]).to_le_bytes();
        bytes[payload_len + 4..].copy_from_slice(&crc);
        assert!(matches!(from_binary(&bytes), Err(StorageError::Version { .. })));
    }

    #[test]
    fn encoding_ends_in_matching_crc_footer() {
        let bytes = to_binary(&fig2_instance()).unwrap();
        let n = bytes.len();
        assert_eq!(&bytes[n - 8..n - 4], crate::binary::encode::FOOTER_MAGIC);
        let stored = u32::from_le_bytes(bytes[n - 4..].try_into().unwrap());
        assert_eq!(stored, crate::crc::crc32(&bytes[..n - 8]));
    }

    #[test]
    fn payload_corruption_is_reported_as_corrupt() {
        let mut bytes = to_binary(&fig2_instance()).unwrap().to_vec();
        bytes[20] ^= 0x40; // flip a payload bit well before the footer
        match from_binary(&bytes) {
            Err(StorageError::Corrupt { expected, actual }) => assert_ne!(expected, actual),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        assert!(matches!(
            from_binary_unchecked(&bytes),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn legacy_footerless_payload_still_decodes() {
        let pi = fig2_instance();
        let with_footer = to_binary(&pi).unwrap();
        let legacy = &with_footer[..with_footer.len() - 8];
        same_distribution(&pi, &from_binary(legacy).unwrap());
    }

    #[test]
    fn lenient_decode_surfaces_checksum_mismatch() {
        let pi = chain(2, 0.5);
        let good = to_binary(&pi).unwrap().to_vec();
        // Pristine bytes: no mismatch.
        assert!(from_binary_lenient(&good).unwrap().checksum_mismatch.is_none());
        // Corrupt a probability byte: strict loaders refuse, lenient
        // decodes and reports the mismatch.
        let mut bad = good.clone();
        let prob_at = bad.len() - 8 - 4; // inside the last encoded f64
        bad[prob_at] ^= 0xff;
        assert!(matches!(from_binary(&bad), Err(StorageError::Corrupt { .. })));
        let lenient = from_binary_lenient(&bad).unwrap();
        let mm = lenient.checksum_mismatch.expect("mismatch must be reported");
        assert_ne!(mm.expected, mm.actual);
        assert_eq!(lenient.instance.objects().count(), pi.objects().count());
    }
}
