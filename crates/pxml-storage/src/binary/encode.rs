//! Binary encoder: a compact length-prefixed codec for probabilistic
//! instances.
//!
//! Layout (all integers little-endian):
//! `magic "PXMLBIN1" · u32 version · catalog (objects, labels, types) ·
//! u32 root-index · per-object records (universe, cards, leaf, OPF, VPF) ·
//! footer "PXC1" · u32 CRC-32 of everything before the footer`.
//! Child sets are encoded as position lists relative to each object's
//! universe, so the decoder rebuilds the canonical mask/sparse form.
//! The footer lets loaders detect torn writes and bit rot; footer-less
//! payloads (written by older builds) are still accepted on decode.

use bytes::{BufMut, Bytes, BytesMut};

use pxml_core::catalog::DisplayObject;
use pxml_core::{ObjectId, ProbInstance, Value};

use crate::error::{Result, StorageError};

/// Magic prefix of the binary format.
pub const MAGIC: &[u8; 8] = b"PXMLBIN1";
/// Current binary-format version.
pub const BINARY_VERSION: u32 = 1;
/// Magic prefix of the 8-byte integrity footer (`"PXC1"` + u32 LE CRC-32
/// of the payload preceding the footer).
pub const FOOTER_MAGIC: &[u8; 4] = b"PXC1";

/// Encodes an instance into a binary buffer.
///
/// Fails with [`StorageError::Encode`] when the instance references
/// objects outside its own vertex set — possible for instances assembled
/// with `from_parts_unchecked`, and previously a panic.
pub fn to_binary(pi: &ProbInstance) -> Result<Bytes> {
    let mut buf = BytesMut::with_capacity(4096);
    buf.put_slice(MAGIC);
    buf.put_u32_le(BINARY_VERSION);

    let cat = pi.catalog();
    // Objects: only the members of V, in id order; ids are re-assigned
    // densely on decode.
    let members: Vec<ObjectId> = pi.objects().collect();
    let index_of = |o: ObjectId| -> Result<u32> {
        members.binary_search(&o).map(|i| i as u32).map_err(|_| {
            StorageError::Encode(format!(
                "object {} is referenced but not a member of V",
                DisplayObject(cat, o)
            ))
        })
    };
    buf.put_u32_le(members.len() as u32);
    for &o in &members {
        put_str(&mut buf, cat.object_name(o));
    }
    // Labels: full catalog label table (label ids are dense).
    buf.put_u32_le(cat.labels().len() as u32);
    for (_, name) in cat.labels().iter() {
        put_str(&mut buf, name);
    }
    // Types.
    buf.put_u32_le(cat.types().len() as u32);
    for (_, def) in cat.types().iter() {
        put_str(&mut buf, def.name());
        buf.put_u32_le(def.domain().len() as u32);
        for v in def.domain() {
            put_value(&mut buf, v);
        }
    }
    buf.put_u32_le(index_of(pi.root())?);

    // Per-object records, in the same order as the member table.
    for &o in &members {
        let node = pi.weak().node(o).ok_or_else(|| {
            StorageError::Encode(format!("no node data for object {}", DisplayObject(cat, o)))
        })?;
        // Universe.
        buf.put_u32_le(node.universe().len() as u32);
        for (_, child, label) in node.universe().iter() {
            buf.put_u32_le(index_of(child)?);
            buf.put_u32_le(label.raw());
        }
        // Cards.
        buf.put_u32_le(node.cards().len() as u32);
        for &(l, card) in node.cards() {
            buf.put_u32_le(l.raw());
            buf.put_u32_le(card.min);
            buf.put_u32_le(card.max);
        }
        // Leaf.
        match node.leaf() {
            Some(leaf) => {
                buf.put_u8(1);
                buf.put_u32_le(leaf.ty.raw());
                match &leaf.val {
                    Some(v) => {
                        buf.put_u8(1);
                        put_value(&mut buf, v);
                    }
                    None => buf.put_u8(0),
                }
            }
            None => buf.put_u8(0),
        }
        // OPF (always materialised to a table).
        match pi.opf(o) {
            Some(opf) => {
                let table = opf.to_table(node.universe());
                buf.put_u8(1);
                buf.put_u32_le(table.len() as u32);
                for (set, p) in table.iter() {
                    let positions: Vec<u32> = set.positions().collect();
                    buf.put_u32_le(positions.len() as u32);
                    for pos in positions {
                        buf.put_u32_le(pos);
                    }
                    buf.put_f64_le(p);
                }
            }
            None => buf.put_u8(0),
        }
        // VPF.
        match pi.vpf(o) {
            Some(vpf) => {
                buf.put_u8(1);
                buf.put_u32_le(vpf.len() as u32);
                for (v, p) in vpf.iter() {
                    put_value(&mut buf, v);
                    buf.put_f64_le(p);
                }
            }
            None => buf.put_u8(0),
        }
    }
    // Integrity footer: CRC-32 of everything encoded so far.
    let crc = crate::crc::crc32(&buf);
    buf.put_slice(FOOTER_MAGIC);
    buf.put_u32_le(crc);
    Ok(buf.freeze())
}

/// Writes the binary encoding to a file **atomically**, returning the
/// byte count.
///
/// Bytes go to a uniquely-named temp file in the destination directory,
/// are fsynced, and are renamed over `path`. A crash at any point leaves
/// either the old file or the complete new one on disk — never a torn
/// hybrid. The temp file is removed on failure.
pub fn write_binary_file(pi: &ProbInstance, path: &std::path::Path) -> Result<usize> {
    use std::io::Write;

    let bytes = to_binary(pi)?;
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "instance.pxmlb".into());
    let tmp = dir.join(format!(".{name}.{}.tmp", std::process::id()));
    let write_and_sync = || -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        // The rename must never expose partially-flushed bytes.
        f.sync_all()
    };
    if let Err(e) = write_and_sync().and_then(|()| std::fs::rename(&tmp, path)) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    // Best-effort: make the rename itself durable. The destination is
    // complete either way, so failure here is not an integrity problem.
    if let Ok(d) = std::fs::File::open(&dir) {
        let _ = d.sync_all();
    }
    Ok(bytes.len())
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Str(s) => {
            buf.put_u8(0);
            put_str(buf, s);
        }
        Value::Int(i) => {
            buf.put_u8(1);
            buf.put_i64_le(*i);
        }
        Value::Float(f) => {
            buf.put_u8(2);
            buf.put_f64_le(*f);
        }
        Value::Bool(b) => {
            buf.put_u8(3);
            buf.put_u8(u8::from(*b));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_core::fixtures::fig2_instance;
    use pxml_core::ids::IdMap;
    use pxml_core::{Catalog, ChildUniverse, WeakInstance, WeakNode};

    #[test]
    fn encoding_starts_with_magic_and_version() {
        let bytes = to_binary(&fig2_instance()).unwrap();
        assert_eq!(&bytes[..8], MAGIC);
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), BINARY_VERSION);
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(
            to_binary(&fig2_instance()).unwrap(),
            to_binary(&fig2_instance()).unwrap()
        );
    }

    #[test]
    fn binary_is_smaller_than_text() {
        let pi = fig2_instance();
        let bin = to_binary(&pi).unwrap().len();
        let txt = crate::text::writer::to_text(&pi).len();
        assert!(bin < txt, "binary {bin} should beat text {txt}");
    }

    #[test]
    fn out_of_v_reference_is_an_error_not_a_panic() {
        // An unchecked instance whose root's universe references an object
        // that was never added to V.
        let mut cat = Catalog::new();
        let r = cat.object("R");
        let ghost = cat.object("Ghost");
        let x = cat.label("x");
        let mut nodes = IdMap::new();
        nodes.insert(
            r,
            WeakNode::from_parts(ChildUniverse::from_members([(ghost, x)]), Vec::new(), None),
        );
        let weak = WeakInstance::from_parts_unchecked(cat.into_shared(), r, nodes);
        let pi = pxml_core::ProbInstance::from_parts_unchecked(weak, IdMap::new(), IdMap::new());
        match to_binary(&pi) {
            Err(StorageError::Encode(msg)) => assert!(msg.contains("Ghost"), "{msg}"),
            other => panic!("expected Encode error, got {other:?}"),
        }
    }
}
