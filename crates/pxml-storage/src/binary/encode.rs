//! Binary encoder: a compact length-prefixed codec for probabilistic
//! instances.
//!
//! Layout (all integers little-endian):
//! `magic "PXMLBIN1" · u32 version · catalog (objects, labels, types) ·
//! u32 root-index · per-object records (universe, cards, leaf, OPF, VPF)`.
//! Child sets are encoded as position lists relative to each object's
//! universe, so the decoder rebuilds the canonical mask/sparse form.

use bytes::{BufMut, Bytes, BytesMut};

use pxml_core::catalog::DisplayObject;
use pxml_core::{ObjectId, ProbInstance, Value};

use crate::error::{Result, StorageError};

/// Magic prefix of the binary format.
pub const MAGIC: &[u8; 8] = b"PXMLBIN1";
/// Current binary-format version.
pub const BINARY_VERSION: u32 = 1;

/// Encodes an instance into a binary buffer.
///
/// Fails with [`StorageError::Encode`] when the instance references
/// objects outside its own vertex set — possible for instances assembled
/// with `from_parts_unchecked`, and previously a panic.
pub fn to_binary(pi: &ProbInstance) -> Result<Bytes> {
    let mut buf = BytesMut::with_capacity(4096);
    buf.put_slice(MAGIC);
    buf.put_u32_le(BINARY_VERSION);

    let cat = pi.catalog();
    // Objects: only the members of V, in id order; ids are re-assigned
    // densely on decode.
    let members: Vec<ObjectId> = pi.objects().collect();
    let index_of = |o: ObjectId| -> Result<u32> {
        members.binary_search(&o).map(|i| i as u32).map_err(|_| {
            StorageError::Encode(format!(
                "object {} is referenced but not a member of V",
                DisplayObject(cat, o)
            ))
        })
    };
    buf.put_u32_le(members.len() as u32);
    for &o in &members {
        put_str(&mut buf, cat.object_name(o));
    }
    // Labels: full catalog label table (label ids are dense).
    buf.put_u32_le(cat.labels().len() as u32);
    for (_, name) in cat.labels().iter() {
        put_str(&mut buf, name);
    }
    // Types.
    buf.put_u32_le(cat.types().len() as u32);
    for (_, def) in cat.types().iter() {
        put_str(&mut buf, def.name());
        buf.put_u32_le(def.domain().len() as u32);
        for v in def.domain() {
            put_value(&mut buf, v);
        }
    }
    buf.put_u32_le(index_of(pi.root())?);

    // Per-object records, in the same order as the member table.
    for &o in &members {
        let node = pi.weak().node(o).ok_or_else(|| {
            StorageError::Encode(format!("no node data for object {}", DisplayObject(cat, o)))
        })?;
        // Universe.
        buf.put_u32_le(node.universe().len() as u32);
        for (_, child, label) in node.universe().iter() {
            buf.put_u32_le(index_of(child)?);
            buf.put_u32_le(label.raw());
        }
        // Cards.
        buf.put_u32_le(node.cards().len() as u32);
        for &(l, card) in node.cards() {
            buf.put_u32_le(l.raw());
            buf.put_u32_le(card.min);
            buf.put_u32_le(card.max);
        }
        // Leaf.
        match node.leaf() {
            Some(leaf) => {
                buf.put_u8(1);
                buf.put_u32_le(leaf.ty.raw());
                match &leaf.val {
                    Some(v) => {
                        buf.put_u8(1);
                        put_value(&mut buf, v);
                    }
                    None => buf.put_u8(0),
                }
            }
            None => buf.put_u8(0),
        }
        // OPF (always materialised to a table).
        match pi.opf(o) {
            Some(opf) => {
                let table = opf.to_table(node.universe());
                buf.put_u8(1);
                buf.put_u32_le(table.len() as u32);
                for (set, p) in table.iter() {
                    let positions: Vec<u32> = set.positions().collect();
                    buf.put_u32_le(positions.len() as u32);
                    for pos in positions {
                        buf.put_u32_le(pos);
                    }
                    buf.put_f64_le(p);
                }
            }
            None => buf.put_u8(0),
        }
        // VPF.
        match pi.vpf(o) {
            Some(vpf) => {
                buf.put_u8(1);
                buf.put_u32_le(vpf.len() as u32);
                for (v, p) in vpf.iter() {
                    put_value(&mut buf, v);
                    buf.put_f64_le(p);
                }
            }
            None => buf.put_u8(0),
        }
    }
    Ok(buf.freeze())
}

/// Writes the binary encoding to a file, returning the byte count.
pub fn write_binary_file(pi: &ProbInstance, path: &std::path::Path) -> Result<usize> {
    let bytes = to_binary(pi)?;
    std::fs::write(path, &bytes)?;
    Ok(bytes.len())
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Str(s) => {
            buf.put_u8(0);
            put_str(buf, s);
        }
        Value::Int(i) => {
            buf.put_u8(1);
            buf.put_i64_le(*i);
        }
        Value::Float(f) => {
            buf.put_u8(2);
            buf.put_f64_le(*f);
        }
        Value::Bool(b) => {
            buf.put_u8(3);
            buf.put_u8(u8::from(*b));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_core::fixtures::fig2_instance;
    use pxml_core::ids::IdMap;
    use pxml_core::{Catalog, ChildUniverse, WeakInstance, WeakNode};

    #[test]
    fn encoding_starts_with_magic_and_version() {
        let bytes = to_binary(&fig2_instance()).unwrap();
        assert_eq!(&bytes[..8], MAGIC);
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), BINARY_VERSION);
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(
            to_binary(&fig2_instance()).unwrap(),
            to_binary(&fig2_instance()).unwrap()
        );
    }

    #[test]
    fn binary_is_smaller_than_text() {
        let pi = fig2_instance();
        let bin = to_binary(&pi).unwrap().len();
        let txt = crate::text::writer::to_text(&pi).len();
        assert!(bin < txt, "binary {bin} should beat text {txt}");
    }

    #[test]
    fn out_of_v_reference_is_an_error_not_a_panic() {
        // An unchecked instance whose root's universe references an object
        // that was never added to V.
        let mut cat = Catalog::new();
        let r = cat.object("R");
        let ghost = cat.object("Ghost");
        let x = cat.label("x");
        let mut nodes = IdMap::new();
        nodes.insert(
            r,
            WeakNode::from_parts(ChildUniverse::from_members([(ghost, x)]), Vec::new(), None),
        );
        let weak = WeakInstance::from_parts_unchecked(cat.into_shared(), r, nodes);
        let pi = pxml_core::ProbInstance::from_parts_unchecked(weak, IdMap::new(), IdMap::new());
        match to_binary(&pi) {
            Err(StorageError::Encode(msg)) => assert!(msg.contains("Ghost"), "{msg}"),
            other => panic!("expected Encode error, got {other:?}"),
        }
    }
}
