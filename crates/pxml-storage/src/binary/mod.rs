//! The compact `.pxmlb` binary format.

pub mod decode;
pub mod encode;
