//! # pxml-storage — persistence for probabilistic instances
//!
//! The paper's experiments include "the time to write the resulting
//! instance onto a disk" in every total (Section 7.1), and for selection
//! that write *dominates* the total (Figure 7(c)). This crate supplies:
//!
//! * [`text`] — a deterministic human-readable `.pxml` format that
//!   transcribes the tables of Figure 2 (hand-written lexer +
//!   recursive-descent parser, no external formats);
//! * [`binary`] — a compact length-prefixed `.pxmlb` codec;
//! * [`xml`] — XML export of individual worlds (semistructured
//!   instances), with `ref` attributes for shared DAG objects.
//!
//! Both round-trip the full model: weak structure, cardinalities, OPFs,
//! VPFs, types and values. Decoders validate everything through
//! `ProbInstance::from_parts`, so a corrupt file can never produce an
//! incoherent instance.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod binary;
pub mod error;
pub mod text;
pub mod xml;

pub use binary::decode::{from_binary, read_binary_file};
pub use binary::encode::{to_binary, write_binary_file};
pub use error::{Result, StorageError};
pub use text::parser::{from_text, read_text_file};
pub use text::writer::{to_text, write_text_file};
pub use xml::to_xml;
