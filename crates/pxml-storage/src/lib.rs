//! # pxml-storage — persistence for probabilistic instances
//!
//! The paper's experiments include "the time to write the resulting
//! instance onto a disk" in every total (Section 7.1), and for selection
//! that write *dominates* the total (Figure 7(c)). This crate supplies:
//!
//! * [`text`] — a deterministic human-readable `.pxml` format that
//!   transcribes the tables of Figure 2 (hand-written lexer +
//!   recursive-descent parser, no external formats);
//! * [`binary`] — a compact length-prefixed `.pxmlb` codec;
//! * [`xml`] — XML export of individual worlds (semistructured
//!   instances), with `ref` attributes for shared DAG objects.
//!
//! Both round-trip the full model: weak structure, cardinalities, OPFs,
//! VPFs, types and values. Decoders validate everything through
//! `ProbInstance::from_parts`, so a corrupt file can never produce an
//! incoherent instance. The `*_unchecked` loaders relax *model*
//! validation only (structural bounds checks always apply) so the
//! `pxml check` linter can diagnose incoherent files instead of stopping
//! at the first violation.
//!
//! ## Error-handling contract
//!
//! Every parse and decode path in this crate is **panic-free on
//! arbitrary input**: malformed bytes or text produce a typed
//! [`StorageError`], never a panic, and allocations are sized only after
//! the corresponding byte count has been checked against the remaining
//! input. The `#![deny(clippy::unwrap_used, ...)]` attribute below
//! enforces this at compile time for all non-test code, and the workspace
//! fault-injection harness (`tests/fuzz_robustness.rs`) enforces it
//! dynamically with tens of thousands of seeded byte mutations.
//!
//! ## Crash safety and integrity
//!
//! [`write_binary_file`] is **atomic**: bytes go to a temp file in the
//! target directory, are fsynced, and are renamed over the destination —
//! a crash mid-write leaves either the old file or the new one, never a
//! torn hybrid. Every `.pxmlb` written by this crate ends in a CRC-32
//! footer (see [`crc`]); the strict loaders verify it and report
//! [`StorageError::Corrupt`] on mismatch, while the lenient
//! [`from_binary_lenient`] decodes anyway and surfaces the mismatch as a
//! diagnostic so `pxml check` can still inspect a damaged file.
//! Footer-less files (written by older versions) remain readable.
//!
//! ## Write-ahead logging
//!
//! [`wal`] supplies the durability layer for the `pxml serve` daemon:
//! an append-only, CRC-32-framed journal of mutation ops text, with
//! configurable fsync policy, a generation header binding each segment
//! to its base snapshot, and a recovery reader that truncates torn
//! tails to the longest valid record prefix instead of erroring.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod binary;
pub mod crc;
pub mod error;
pub mod text;
pub mod wal;
pub mod xml;

pub use binary::decode::{
    crc_verifications, from_binary, from_binary_lenient, from_binary_unchecked, read_binary_file,
    read_binary_file_lenient, read_binary_file_unchecked, ChecksumMismatch, LenientBinary,
};
pub use binary::encode::{to_binary, write_binary_file};
pub use crc::crc32;
pub use error::{Result, StorageError};
pub use text::parser::{
    from_text, from_text_unchecked, read_text_file, read_text_file_unchecked,
};
pub use text::writer::{to_text, write_text_file};
pub use wal::{
    recover_segment, recover_segment_bytes, AttachOutcome, FsyncPolicy, RecoveredSegment, Wal,
    WalCounters,
};
pub use xml::to_xml;
