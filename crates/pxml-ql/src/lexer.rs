//! Tokeniser for the query language.

use pxml_core::Value;

use crate::error::{QlError, Result};

/// A query token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Bare word (keyword or name).
    Word(String),
    /// Quoted name (allows dots/spaces inside names).
    Quoted(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `@`
    At,
}

impl Tok {
    /// The token as a name, if it is one.
    pub fn as_name(&self) -> Option<&str> {
        match self {
            Tok::Word(w) => Some(w),
            Tok::Quoted(q) => Some(q),
            _ => None,
        }
    }

    /// The token as a literal value, if it is one. Bare `true`/`false`
    /// become booleans; quoted strings become string values.
    pub fn as_value(&self) -> Option<Value> {
        match self {
            Tok::Int(i) => Some(Value::Int(*i)),
            Tok::Float(x) => Some(Value::Float(*x)),
            Tok::Quoted(s) => Some(Value::str(s)),
            Tok::Word(w) if w.eq_ignore_ascii_case("true") => Some(Value::Bool(true)),
            Tok::Word(w) if w.eq_ignore_ascii_case("false") => Some(Value::Bool(false)),
            _ => None,
        }
    }
}

/// Tokenises a query string.
pub fn lex(input: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    let mut pos = 0usize;
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '.' => {
                out.push(Tok::Dot);
                chars.next();
            }
            '=' => {
                out.push(Tok::Eq);
                chars.next();
            }
            '@' => {
                out.push(Tok::At);
                chars.next();
            }
            '"' | '\'' => {
                let quote = c;
                chars.next();
                let mut s = String::new();
                let mut closed = false;
                for c2 in chars.by_ref() {
                    if c2 == quote {
                        closed = true;
                        break;
                    }
                    s.push(c2);
                }
                if !closed {
                    return Err(QlError::Parse {
                        position: pos,
                        message: "unterminated quoted name".into(),
                    });
                }
                out.push(Tok::Quoted(s));
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' => {
                let mut text = String::new();
                let mut is_float = false;
                while let Some(&c2) = chars.peek() {
                    if c2.is_ascii_digit() || c2 == '-' || c2 == '+' {
                        text.push(c2);
                        chars.next();
                    } else if c2 == 'e' || c2 == 'E' {
                        is_float = true;
                        text.push(c2);
                        chars.next();
                    } else if c2 == '.' {
                        // A dot is a path separator unless followed by a
                        // digit (allowing `0.5` but keeping `R.book`).
                        let mut lookahead = chars.clone();
                        lookahead.next();
                        if lookahead.peek().is_some_and(|d| d.is_ascii_digit()) {
                            is_float = true;
                            text.push('.');
                            chars.next();
                        } else {
                            break;
                        }
                    } else {
                        break;
                    }
                }
                let tok = if is_float {
                    Tok::Float(text.parse().map_err(|e| QlError::Parse {
                        position: pos,
                        message: format!("bad float {text:?}: {e}"),
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|e| QlError::Parse {
                        position: pos,
                        message: format!("bad integer {text:?}: {e}"),
                    })?)
                };
                out.push(tok);
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&c2) = chars.peek() {
                    if c2.is_alphanumeric() || c2 == '_' {
                        s.push(c2);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Tok::Word(s));
            }
            other => {
                return Err(QlError::Parse {
                    position: pos,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
        pos += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_words_dots_and_eq() {
        let toks = lex("SELECT R.book = B1").unwrap();
        assert_eq!(
            toks,
            vec![
                Tok::Word("SELECT".into()),
                Tok::Word("R".into()),
                Tok::Dot,
                Tok::Word("book".into()),
                Tok::Eq,
                Tok::Word("B1".into()),
            ]
        );
    }

    #[test]
    fn numbers_vs_paths() {
        assert_eq!(lex("0.5").unwrap(), vec![Tok::Float(0.5)]);
        assert_eq!(
            lex("2.book").unwrap(),
            vec![Tok::Int(2), Tok::Dot, Tok::Word("book".into())]
        );
        assert_eq!(lex("1e-3").unwrap(), vec![Tok::Float(1e-3)]);
    }

    #[test]
    fn quoted_names_allow_special_characters() {
        let toks = lex("POINT \"odd name\" IN R.x").unwrap();
        assert_eq!(toks[1], Tok::Quoted("odd name".into()));
        assert!(lex("'unterminated").is_err());
    }

    #[test]
    fn value_conversion() {
        assert_eq!(Tok::Int(3).as_value(), Some(Value::Int(3)));
        assert_eq!(Tok::Word("true".into()).as_value(), Some(Value::Bool(true)));
        assert_eq!(Tok::Quoted("VQDB".into()).as_value(), Some(Value::str("VQDB")));
        assert_eq!(Tok::Dot.as_value(), None);
    }
}
