//! The query AST.

use pxml_core::Value;

/// A path expression in textual form: a root object name followed by
/// label names.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathText {
    /// Root object name.
    pub root: String,
    /// Edge label names, outermost first.
    pub labels: Vec<String>,
}

impl PathText {
    /// Builds from dotted segments (first = root).
    pub fn new(segments: Vec<String>) -> Option<Self> {
        let mut it = segments.into_iter();
        let root = it.next()?;
        Some(PathText { root, labels: it.collect() })
    }
}

impl std::fmt::Display for PathText {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.root)?;
        for l in &self.labels {
            write!(f, ".{l}")?;
        }
        Ok(())
    }
}

/// Which projection operator to apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProjectKind {
    /// Ancestor projection (Definition 5.2) — the default.
    Ancestor,
    /// Single projection (targets directly under the root).
    Single,
    /// Descendant projection (targets plus their subtrees).
    Descendant,
}

/// A parsed query.
#[derive(Clone, Debug, PartialEq)]
pub enum Query {
    /// `PROJECT [ANCESTOR|SINGLE|DESCENDANT] <path>`
    Project {
        /// The projection operator.
        kind: ProjectKind,
        /// The path expression.
        path: PathText,
    },
    /// `SELECT <path> = <object>` — object selection (Definition 5.4).
    SelectObject {
        /// The locating path.
        path: PathText,
        /// The selected object's name.
        object: String,
    },
    /// `SELECT VALUE <path> [@ <object>] = <literal>` — value selection
    /// (Definition 5.5), optionally pinned to one object.
    SelectValue {
        /// The locating path.
        path: PathText,
        /// The designated object, if any.
        object: Option<String>,
        /// The value to match.
        value: Value,
    },
    /// `POINT <object> IN <path>` — `P(o ∈ p)` (Definition 6.1).
    Point {
        /// The queried object's name.
        object: String,
        /// The path expression.
        path: PathText,
    },
    /// `EXISTS <path>` — `P(∃o ∈ p)`.
    Exists {
        /// The path expression.
        path: PathText,
    },
    /// `CHAIN <o1>.<o2>.…` — simple object-chain probability (§6.2).
    Chain {
        /// The object names, root first.
        objects: Vec<String>,
    },
    /// `PROB <object>` — presence probability (Bayesian network).
    Prob {
        /// The queried object's name.
        object: String,
    },
    /// `WORLDS [TOP <n>]` — enumerate compatible worlds (most probable
    /// first).
    Worlds {
        /// Optional cap on the number of worlds reported.
        top: Option<usize>,
    },
    /// `RENDER` — pretty-print the instance's Figure-2-style tables.
    Render,
}
