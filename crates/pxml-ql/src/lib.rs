//! # pxml-ql — a textual query language for PXML
//!
//! A small query surface over probabilistic instances, compiling to the
//! algebra (`pxml-algebra`), the §6.2 query engines (`pxml-query`) and
//! the Bayesian network (`pxml-bayes`), with automatic engine fallback:
//!
//! ```text
//! PROJECT [ANCESTOR|SINGLE|DESCENDANT] R.book.author
//! SELECT R.book = B1
//! SELECT VALUE R.book.title [@ T1] = "VQDB"
//! POINT A1 IN R.book.author
//! EXISTS R.book.title
//! CHAIN R.B1.A1
//! PROB A1
//! WORLDS [TOP n]
//! RENDER
//! ```
//!
//! ```
//! use pxml_core::fixtures::fig2_instance;
//! use pxml_ql::{run, Output};
//!
//! let pi = fig2_instance();
//! let Output::Probability(p) = run(&pi, "POINT T2 IN R.book.title").unwrap() else {
//!     unreachable!()
//! };
//! assert!((p - 0.8).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod analyze;
pub mod ast;
pub mod error;
pub mod exec;
pub mod lexer;
pub mod parser;

pub use analyze::{analyze as analyze_text, analyze_query, QueryAnalysis};
pub use ast::{PathText, ProjectKind, Query};
pub use error::{QlError, Result};
pub use exec::{execute, run, Engine, Output};
pub use parser::parse;
