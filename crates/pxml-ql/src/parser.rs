//! Recursive-descent parser for the query language.

use crate::ast::{PathText, ProjectKind, Query};
use crate::error::{QlError, Result};
use crate::lexer::{lex, Tok};

/// Parses one query.
pub fn parse(input: &str) -> Result<Query> {
    let toks = lex(input)?;
    let mut p = P { toks, pos: 0 };
    let q = p.query()?;
    if p.pos != p.toks.len() {
        return p.err("trailing input after query");
    }
    Ok(q)
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(QlError::Parse { position: self.pos, message: message.into() })
    }

    fn peek_word(&self) -> Option<&str> {
        match self.toks.get(self.pos) {
            Some(Tok::Word(w)) => Some(w.as_str()),
            _ => None,
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_word().is_some_and(|w| w.eq_ignore_ascii_case(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn name(&mut self) -> Result<String> {
        match self.toks.get(self.pos).and_then(Tok::as_name) {
            Some(n) => {
                let n = n.to_string();
                self.pos += 1;
                Ok(n)
            }
            None => self.err("expected a name"),
        }
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<()> {
        if self.toks.get(self.pos) == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {what}"))
        }
    }

    fn path(&mut self) -> Result<PathText> {
        let mut segments = vec![self.name()?];
        while self.toks.get(self.pos) == Some(&Tok::Dot) {
            self.pos += 1;
            segments.push(self.name()?);
        }
        PathText::new(segments).ok_or(QlError::Parse {
            position: self.pos,
            message: "empty path".into(),
        })
    }

    fn value(&mut self) -> Result<pxml_core::Value> {
        match self.toks.get(self.pos).and_then(Tok::as_value) {
            Some(v) => {
                self.pos += 1;
                Ok(v)
            }
            None => self.err("expected a literal value"),
        }
    }

    fn query(&mut self) -> Result<Query> {
        if self.eat_keyword("PROJECT") {
            let kind = if self.eat_keyword("SINGLE") {
                ProjectKind::Single
            } else if self.eat_keyword("DESCENDANT") {
                ProjectKind::Descendant
            } else {
                self.eat_keyword("ANCESTOR");
                ProjectKind::Ancestor
            };
            return Ok(Query::Project { kind, path: self.path()? });
        }
        if self.eat_keyword("SELECT") {
            if self.eat_keyword("VALUE") {
                let path = self.path()?;
                let object = if self.toks.get(self.pos) == Some(&Tok::At) {
                    self.pos += 1;
                    Some(self.name()?)
                } else {
                    None
                };
                self.expect(&Tok::Eq, "'='")?;
                let value = self.value()?;
                return Ok(Query::SelectValue { path, object, value });
            }
            let path = self.path()?;
            self.expect(&Tok::Eq, "'='")?;
            let object = self.name()?;
            return Ok(Query::SelectObject { path, object });
        }
        if self.eat_keyword("POINT") {
            let object = self.name()?;
            if !self.eat_keyword("IN") {
                return self.err("expected IN");
            }
            return Ok(Query::Point { object, path: self.path()? });
        }
        if self.eat_keyword("EXISTS") {
            return Ok(Query::Exists { path: self.path()? });
        }
        if self.eat_keyword("CHAIN") {
            let path = self.path()?;
            let mut objects = vec![path.root];
            objects.extend(path.labels);
            if objects.len() < 2 {
                return self.err("a chain needs at least two objects");
            }
            return Ok(Query::Chain { objects });
        }
        if self.eat_keyword("PROB") {
            return Ok(Query::Prob { object: self.name()? });
        }
        if self.eat_keyword("WORLDS") {
            let top = if self.eat_keyword("TOP") {
                match self.toks.get(self.pos) {
                    Some(Tok::Int(n)) if *n > 0 => {
                        self.pos += 1;
                        Some(*n as usize)
                    }
                    _ => return self.err("expected a positive integer after TOP"),
                }
            } else {
                None
            };
            return Ok(Query::Worlds { top });
        }
        if self.eat_keyword("RENDER") {
            return Ok(Query::Render);
        }
        self.err("expected PROJECT/SELECT/POINT/EXISTS/CHAIN/PROB/WORLDS/RENDER")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_core::Value;

    #[test]
    fn parses_projections() {
        assert_eq!(
            parse("PROJECT R.book.author").unwrap(),
            Query::Project {
                kind: ProjectKind::Ancestor,
                path: PathText {
                    root: "R".into(),
                    labels: vec!["book".into(), "author".into()]
                },
            }
        );
        assert!(matches!(
            parse("project single R.book").unwrap(),
            Query::Project { kind: ProjectKind::Single, .. }
        ));
        assert!(matches!(
            parse("PROJECT DESCENDANT R.book").unwrap(),
            Query::Project { kind: ProjectKind::Descendant, .. }
        ));
    }

    #[test]
    fn parses_selections() {
        assert_eq!(
            parse("SELECT R.book = B1").unwrap(),
            Query::SelectObject {
                path: PathText { root: "R".into(), labels: vec!["book".into()] },
                object: "B1".into(),
            }
        );
        assert_eq!(
            parse("SELECT VALUE R.book.title = \"VQDB\"").unwrap(),
            Query::SelectValue {
                path: PathText {
                    root: "R".into(),
                    labels: vec!["book".into(), "title".into()]
                },
                object: None,
                value: Value::str("VQDB"),
            }
        );
        assert_eq!(
            parse("SELECT VALUE R.book.title @ T1 = \"Lore\"").unwrap(),
            Query::SelectValue {
                path: PathText {
                    root: "R".into(),
                    labels: vec!["book".into(), "title".into()]
                },
                object: Some("T1".into()),
                value: Value::str("Lore"),
            }
        );
    }

    #[test]
    fn parses_probability_queries() {
        assert_eq!(
            parse("POINT A1 IN R.book.author").unwrap(),
            Query::Point {
                object: "A1".into(),
                path: PathText {
                    root: "R".into(),
                    labels: vec!["book".into(), "author".into()]
                },
            }
        );
        assert!(matches!(parse("EXISTS R.book").unwrap(), Query::Exists { .. }));
        assert_eq!(
            parse("CHAIN R.B1.A1").unwrap(),
            Query::Chain { objects: vec!["R".into(), "B1".into(), "A1".into()] }
        );
        assert_eq!(parse("PROB A1").unwrap(), Query::Prob { object: "A1".into() });
    }

    #[test]
    fn parses_worlds_and_render() {
        assert_eq!(parse("WORLDS").unwrap(), Query::Worlds { top: None });
        assert_eq!(parse("WORLDS TOP 5").unwrap(), Query::Worlds { top: Some(5) });
        assert_eq!(parse("RENDER").unwrap(), Query::Render);
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse("").is_err());
        assert!(parse("SELECT R.book").is_err()); // missing = o
        assert!(parse("POINT A1 R.book").is_err()); // missing IN
        assert!(parse("CHAIN R").is_err()); // too short
        assert!(parse("WORLDS TOP 0").is_err());
        assert!(parse("RENDER extra").is_err());
        assert!(parse("FROBNICATE x").is_err());
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse("exists R.book").is_ok());
        assert!(parse("Worlds top 3").is_ok());
    }
}
