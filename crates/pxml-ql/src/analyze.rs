//! Static analysis of textual queries: name resolution, satisfiability
//! and domain checks over a [`StructuralSummary`], with the engine's
//! `AQ0xx` diagnostic taxonomy.
//!
//! [`analyze`] never executes anything and never fails: parse errors
//! and unresolvable names become diagnostics (`AQ004` / `AQ005`), the
//! probability queries (`POINT` / `EXISTS` / `CHAIN`) are handed to the
//! engine-level pre-flight ([`pxml_query::preflight`]) whose full
//! [`Report`] — verdict, cost bound, probability ceiling — is attached
//! to the result, and the algebra statements get the QL-only checks:
//! unsatisfiable paths (`AQ001`), out-of-domain literals (`AQ002`) and
//! dead predicate branches (`AQ003`).

use pxml_core::summary::StructuralSummary;
use pxml_core::{Label, ObjectId, ProbInstance};
use pxml_query::preflight::{self, DiagCode, Diagnostic, Report};

use crate::ast::{PathText, Query};
use crate::parser;

/// The static-analysis result for one textual query.
#[derive(Clone, Debug)]
pub struct QueryAnalysis {
    /// The analysed source text, trimmed.
    pub text: String,
    /// All findings, in detection order. Empty means clean.
    pub diagnostics: Vec<Diagnostic>,
    /// The engine pre-flight report, when the statement maps to an
    /// engine query (`POINT` / `EXISTS` / `CHAIN` with resolvable
    /// names).
    pub report: Option<Report>,
}

impl QueryAnalysis {
    /// True when no diagnostic was raised.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when some diagnostic carries `code`.
    pub fn has(&self, code: DiagCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }
}

/// Parses and statically analyses one textual query. Total: malformed
/// input yields an `AQ004` diagnostic, never an error or a panic.
pub fn analyze(pi: &ProbInstance, summary: &StructuralSummary, text: &str) -> QueryAnalysis {
    let trimmed = text.trim();
    match parser::parse(trimmed) {
        Ok(q) => analyze_query(pi, summary, &q, trimmed),
        Err(e) => QueryAnalysis {
            text: trimmed.to_string(),
            diagnostics: vec![Diagnostic {
                code: DiagCode::WillError,
                message: format!("parse error: {e}"),
            }],
            report: None,
        },
    }
}

/// Statically analyses one parsed query.
pub fn analyze_query(
    pi: &ProbInstance,
    summary: &StructuralSummary,
    q: &Query,
    text: &str,
) -> QueryAnalysis {
    let mut diagnostics = Vec::new();
    let mut report = None;
    match q {
        Query::Point { object, path } => {
            let target = resolve_object(pi, object, &mut diagnostics);
            if let (Some(x), Some(p)) = (target, resolve_path(pi, path, &mut diagnostics)) {
                let r = preflight::analyze(summary, &pxml_query::Query::point(p, x));
                diagnostics.extend(r.diagnostics.iter().cloned());
                report = Some(r);
            }
        }
        Query::Exists { path } => {
            if let Some(p) = resolve_path(pi, path, &mut diagnostics) {
                let r = preflight::analyze(summary, &pxml_query::Query::exists(p));
                diagnostics.extend(r.diagnostics.iter().cloned());
                report = Some(r);
            }
        }
        Query::Chain { objects } => {
            let resolved: Option<Vec<ObjectId>> = objects
                .iter()
                .map(|name| resolve_object(pi, name, &mut diagnostics))
                .collect();
            if let Some(chain) = resolved {
                let r = preflight::analyze(summary, &pxml_query::Query::chain(chain));
                diagnostics.extend(r.diagnostics.iter().cloned());
                report = Some(r);
            }
        }
        Query::Project { path, .. } => {
            check_satisfiable(pi, summary, path, &mut diagnostics);
        }
        Query::SelectObject { path, object } => {
            if let Some(located) = check_satisfiable(pi, summary, path, &mut diagnostics) {
                if let Some(x) = resolve_object(pi, object, &mut diagnostics) {
                    if located.binary_search(&x).is_err() {
                        diagnostics.push(Diagnostic {
                            code: DiagCode::DeadBranch,
                            message: format!(
                                "{object:?} is never located by the path; the selection \
                                 condition can never hold"
                            ),
                        });
                    }
                }
            }
        }
        Query::SelectValue { path, object, value } => {
            if let Some(located) = check_satisfiable(pi, summary, path, &mut diagnostics) {
                let mut scope = located;
                if let Some(name) = object {
                    match resolve_object(pi, name, &mut diagnostics) {
                        Some(x) if scope.binary_search(&x).is_err() => {
                            diagnostics.push(Diagnostic {
                                code: DiagCode::DeadBranch,
                                message: format!(
                                    "{name:?} is never located by the path; the `@` anchor \
                                     selects nothing"
                                ),
                            });
                            scope = Vec::new();
                        }
                        Some(x) => scope = vec![x],
                        None => scope = Vec::new(),
                    }
                }
                // Out-of-domain literal: no leaf in scope can take the
                // value with positive probability. Open domains (no
                // VPF, no fixed value) conservatively support anything.
                if !scope.is_empty() {
                    let supported = scope.iter().any(|o| {
                        summary
                            .object(*o)
                            .and_then(|s| s.leaf.as_ref())
                            .is_none_or(|leaf| leaf.supports(value))
                    });
                    if !supported {
                        diagnostics.push(Diagnostic {
                            code: DiagCode::OutOfDomainValue,
                            message: format!(
                                "literal {value:?} lies outside every located leaf's value \
                                 domain; the selection condition can never hold"
                            ),
                        });
                    }
                }
            }
        }
        Query::Prob { object } => {
            resolve_object(pi, object, &mut diagnostics);
        }
        Query::Worlds { .. } | Query::Render => {}
    }
    QueryAnalysis { text: text.to_string(), diagnostics, report }
}

/// Resolves an object name, recording `AQ005` on failure.
fn resolve_object(
    pi: &ProbInstance,
    name: &str,
    diagnostics: &mut Vec<Diagnostic>,
) -> Option<ObjectId> {
    let found = pi.catalog().find_object(name);
    if found.is_none() {
        diagnostics.push(Diagnostic {
            code: DiagCode::UnknownName,
            message: format!("unknown object {name:?}"),
        });
    }
    found
}

/// Resolves a textual path, recording `AQ005` per unknown segment.
/// Returns `None` when any segment fails.
fn resolve_path(
    pi: &ProbInstance,
    path: &PathText,
    diagnostics: &mut Vec<Diagnostic>,
) -> Option<pxml_algebra::PathExpr> {
    let root = resolve_object(pi, &path.root, diagnostics)?;
    let labels: Option<Vec<Label>> = path
        .labels
        .iter()
        .map(|l| {
            let found = pi.catalog().find_label(l);
            if found.is_none() {
                diagnostics.push(Diagnostic {
                    code: DiagCode::UnknownName,
                    message: format!("unknown label {l:?}"),
                });
            }
            found
        })
        .collect();
    Some(pxml_algebra::PathExpr::new(root, labels?))
}

/// Resolves `path` and checks it locates at least one object,
/// recording `AQ001` otherwise. Returns the located set (sorted) when
/// the path resolves.
fn check_satisfiable(
    pi: &ProbInstance,
    summary: &StructuralSummary,
    path: &PathText,
    diagnostics: &mut Vec<Diagnostic>,
) -> Option<Vec<ObjectId>> {
    let p = resolve_path(pi, path, diagnostics)?;
    let layers = summary.layers(p.root, &p.labels);
    let located = layers.last().cloned().unwrap_or_default();
    if located.is_empty() {
        diagnostics.push(Diagnostic {
            code: DiagCode::ProvablyZero,
            message: format!("path {path} locates no object in any compatible world"),
        });
    }
    Some(located)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_core::fixtures::fig2_instance;
    use pxml_core::Value;

    fn setup() -> (ProbInstance, StructuralSummary) {
        let pi = fig2_instance();
        let s = StructuralSummary::build(&pi);
        (pi, s)
    }

    #[test]
    fn clean_point_query_gets_a_report() {
        let (pi, s) = setup();
        let a = analyze(&pi, &s, "POINT T2 IN R.book.title");
        assert!(a.is_clean(), "{:?}", a.diagnostics);
        let r = a.report.expect("engine query analysed");
        assert!(r.cost.exact_steps);
    }

    #[test]
    fn unknown_names_are_aq005() {
        let (pi, s) = setup();
        let a = analyze(&pi, &s, "POINT NOPE IN R.book");
        assert!(a.has(DiagCode::UnknownName));
        assert!(a.report.is_none());
        let b = analyze(&pi, &s, "EXISTS R.nosuchlabel");
        assert!(b.has(DiagCode::UnknownName));
    }

    #[test]
    fn parse_errors_are_aq004() {
        let (pi, s) = setup();
        let a = analyze(&pi, &s, "FROBNICATE R");
        assert!(a.has(DiagCode::WillError));
    }

    #[test]
    fn out_of_domain_literal_is_aq002() {
        let (pi, s) = setup();
        let a = analyze(
            &pi,
            &s,
            "SELECT VALUE R.book.title = \"no such title anywhere\"",
        );
        assert!(a.has(DiagCode::OutOfDomainValue), "{:?}", a.diagnostics);
        // An in-domain literal stays clean.
        let title = pi
            .vpf(pi.oid("T1").unwrap())
            .and_then(|v| v.iter().next().map(|(val, _)| val.clone()))
            .unwrap_or(Value::from("VQDB"));
        let q = crate::ast::Query::SelectValue {
            path: crate::ast::PathText {
                root: "R".into(),
                labels: vec!["book".into(), "title".into()],
            },
            object: None,
            value: title,
        };
        let b = analyze_query(&pi, &s, &q, "SELECT VALUE ...");
        assert!(!b.has(DiagCode::OutOfDomainValue), "{:?}", b.diagnostics);
    }

    #[test]
    fn dead_anchor_is_aq003() {
        let (pi, s) = setup();
        // B1 is a book, never a title: the @ anchor is dead.
        let a = analyze(&pi, &s, "SELECT VALUE R.book.title @ B1 = \"VQDB\"");
        assert!(a.has(DiagCode::DeadBranch), "{:?}", a.diagnostics);
    }
}
