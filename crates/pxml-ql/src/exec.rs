//! Query execution: compiles the AST onto the algebra/query/BN engines
//! with automatic fallback.
//!
//! The `Auto` engine tries the paper's efficient algorithms first and
//! falls back in order of increasing cost when an algorithm's
//! assumptions fail:
//!
//! * point/exists: §6.2 ε propagation → inclusion–exclusion over chains
//!   → possible-worlds enumeration;
//! * projection/selection: efficient local algorithm → global semantics
//!   (world table), reported as [`Output::Worlds`] when the result is
//!   not expressible as a single probabilistic instance.

use pxml_algebra::naive::{
    ancestor_project_global, descendant_project_global, select_global, single_project_global,
};
use pxml_algebra::{
    ancestor_project, descendant_project, select, single_project, AlgebraError, PathExpr,
    SelectCond,
};
use pxml_core::{enumerate_worlds, ObjectId, ProbInstance, WorldTable};
use pxml_query::{
    chain_probability, exists_query, exists_query_dag, point_query, point_query_dag, QueryError,
};

use crate::ast::{PathText, ProjectKind, Query};
use crate::error::{QlError, Result};

/// Engine selection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// Efficient algorithms with automatic fallback (default).
    #[default]
    Auto,
    /// Only the efficient tree algorithms; errors on DAGs.
    Tree,
    /// Only the global possible-worlds semantics.
    Naive,
}

/// The result of executing a query.
#[derive(Clone, Debug)]
pub enum Output {
    /// A probabilistic instance (projection / selection result).
    Instance(ProbInstance),
    /// An instance plus the selection's prior probability.
    Selected {
        /// The conditioned instance.
        instance: ProbInstance,
        /// Prior probability of the condition.
        selectivity: f64,
    },
    /// A single probability.
    Probability(f64),
    /// A distribution over worlds, rendered (most probable first).
    Worlds(Vec<(String, f64)>),
    /// Free-form text (e.g. `RENDER`).
    Text(String),
}

impl Output {
    /// Human-readable rendering for CLI/logging use.
    pub fn render(&self) -> String {
        match self {
            Output::Instance(pi) => {
                format!("instance with {} objects\n{}", pi.object_count(), pi.render())
            }
            Output::Selected { instance, selectivity } => format!(
                "selectivity {selectivity:.6}; instance with {} objects",
                instance.object_count()
            ),
            Output::Probability(p) => format!("{p:.6}"),
            Output::Worlds(ws) => {
                let mut out = String::new();
                for (s, p) in ws {
                    out.push_str(&format!("p = {p:.6}\n{s}\n"));
                }
                out
            }
            Output::Text(t) => t.clone(),
        }
    }
}

/// Parses and executes a query string with the default engine.
pub fn run(pi: &ProbInstance, input: &str) -> Result<Output> {
    execute(pi, &crate::parser::parse(input)?, Engine::Auto)
}

/// Executes a parsed query.
pub fn execute(pi: &ProbInstance, q: &Query, engine: Engine) -> Result<Output> {
    match q {
        Query::Project { kind, path } => project(pi, *kind, path, engine),
        Query::SelectObject { path, object } => {
            let p = resolve_path(pi, path)?;
            let o = resolve_object(pi, object)?;
            let cond = SelectCond::ObjectAt(p, o);
            selection(pi, &cond, engine)
        }
        Query::SelectValue { path, object, value } => {
            let p = resolve_path(pi, path)?;
            let cond = match object {
                Some(name) => {
                    SelectCond::ValueAt(p, resolve_object(pi, name)?, value.clone())
                }
                None => SelectCond::ValueEquals(p, value.clone()),
            };
            selection(pi, &cond, engine)
        }
        Query::Point { object, path } => {
            let p = resolve_path(pi, path)?;
            let o = resolve_object(pi, object)?;
            point(pi, &p, o, engine).map(Output::Probability)
        }
        Query::Exists { path } => {
            let p = resolve_path(pi, path)?;
            exists(pi, &p, engine).map(Output::Probability)
        }
        Query::Chain { objects } => {
            let ids: Vec<ObjectId> = objects
                .iter()
                .map(|n| resolve_object(pi, n))
                .collect::<Result<_>>()?;
            Ok(Output::Probability(chain_probability(pi, &ids)?))
        }
        Query::Prob { object } => {
            let o = resolve_object(pi, object)?;
            let net = pxml_bayes::Network::compile(pi);
            Ok(Output::Probability(net.presence_probability(o)))
        }
        Query::Worlds { top } => {
            let worlds = enumerate_worlds(pi)?;
            Ok(Output::Worlds(render_worlds(&worlds, *top)))
        }
        Query::Render => Ok(Output::Text(pi.render())),
    }
}

fn resolve_path(pi: &ProbInstance, path: &PathText) -> Result<PathExpr> {
    let root = pi
        .catalog()
        .find_object(&path.root)
        .ok_or_else(|| QlError::UnknownName(path.root.clone()))?;
    let labels = path
        .labels
        .iter()
        .map(|l| {
            pi.catalog().find_label(l).ok_or_else(|| QlError::UnknownName(l.clone()))
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(PathExpr::new(root, labels))
}

fn resolve_object(pi: &ProbInstance, name: &str) -> Result<ObjectId> {
    pi.catalog().find_object(name).ok_or_else(|| QlError::UnknownName(name.into()))
}

fn project(
    pi: &ProbInstance,
    kind: ProjectKind,
    path: &PathText,
    engine: Engine,
) -> Result<Output> {
    let p = resolve_path(pi, path)?;
    match (kind, engine) {
        (ProjectKind::Ancestor, Engine::Tree) => {
            Ok(Output::Instance(ancestor_project(pi, &p)?))
        }
        (ProjectKind::Ancestor, Engine::Auto) => match ancestor_project(pi, &p) {
            Ok(out) => Ok(Output::Instance(out)),
            Err(AlgebraError::NotTreeShaped(_)) => {
                Ok(Output::Worlds(render_worlds(&ancestor_project_global(pi, &p)?, None)))
            }
            Err(e) => Err(e.into()),
        },
        (ProjectKind::Ancestor, Engine::Naive) => {
            Ok(Output::Worlds(render_worlds(&ancestor_project_global(pi, &p)?, None)))
        }
        (ProjectKind::Single, Engine::Tree) => Ok(Output::Instance(single_project(pi, &p)?)),
        (ProjectKind::Single, Engine::Auto) => match single_project(pi, &p) {
            Ok(out) => Ok(Output::Instance(out)),
            Err(AlgebraError::NotTreeShaped(_)) | Err(AlgebraError::UnsupportedCondition(_)) => {
                Ok(Output::Worlds(render_worlds(&single_project_global(pi, &p)?, None)))
            }
            Err(e) => Err(e.into()),
        },
        (ProjectKind::Single, Engine::Naive) => {
            Ok(Output::Worlds(render_worlds(&single_project_global(pi, &p)?, None)))
        }
        (ProjectKind::Descendant, Engine::Tree) => {
            Ok(Output::Instance(descendant_project(pi, &p)?))
        }
        (ProjectKind::Descendant, Engine::Auto) => match descendant_project(pi, &p) {
            Ok(out) => Ok(Output::Instance(out)),
            Err(AlgebraError::NotTreeShaped(_)) | Err(AlgebraError::UnsupportedCondition(_)) => {
                Ok(Output::Worlds(render_worlds(&descendant_project_global(pi, &p)?, None)))
            }
            Err(e) => Err(e.into()),
        },
        (ProjectKind::Descendant, Engine::Naive) => {
            Ok(Output::Worlds(render_worlds(&descendant_project_global(pi, &p)?, None)))
        }
    }
}

fn selection(pi: &ProbInstance, cond: &SelectCond, engine: Engine) -> Result<Output> {
    match engine {
        Engine::Tree => {
            let sel = select(pi, cond)?;
            Ok(Output::Selected { instance: sel.instance, selectivity: sel.selectivity })
        }
        Engine::Auto => match select(pi, cond) {
            Ok(sel) => {
                Ok(Output::Selected { instance: sel.instance, selectivity: sel.selectivity })
            }
            Err(AlgebraError::NotTreeShaped(_)) | Err(AlgebraError::UnsupportedCondition(_)) => {
                let (worlds, _prior) = select_global(pi, cond)?;
                Ok(Output::Worlds(render_worlds(&worlds, None)))
            }
            Err(e) => Err(e.into()),
        },
        Engine::Naive => {
            let (worlds, _prior) = select_global(pi, cond)?;
            Ok(Output::Worlds(render_worlds(&worlds, None)))
        }
    }
}

fn point(pi: &ProbInstance, p: &PathExpr, o: ObjectId, engine: Engine) -> Result<f64> {
    match engine {
        Engine::Tree => Ok(point_query(pi, p, o)?),
        Engine::Naive => {
            let worlds = enumerate_worlds(pi)?;
            Ok(worlds.probability_that(|s| pxml_algebra::satisfies_sd(s, p, o)))
        }
        Engine::Auto => match point_query(pi, p, o) {
            Ok(x) => Ok(x),
            Err(QueryError::NotTreeShaped(_)) => match point_query_dag(pi, p, o) {
                Ok(x) => Ok(x),
                Err(QueryError::TooManyChains(_)) => {
                    let worlds = enumerate_worlds(pi)?;
                    Ok(worlds.probability_that(|s| pxml_algebra::satisfies_sd(s, p, o)))
                }
                Err(e) => Err(e.into()),
            },
            Err(e) => Err(e.into()),
        },
    }
}

fn exists(pi: &ProbInstance, p: &PathExpr, engine: Engine) -> Result<f64> {
    match engine {
        Engine::Tree => Ok(exists_query(pi, p)?),
        Engine::Naive => Ok(pxml_algebra::naive::exists_global(pi, p)?),
        Engine::Auto => match exists_query(pi, p) {
            Ok(x) => Ok(x),
            Err(QueryError::NotTreeShaped(_)) => match exists_query_dag(pi, p) {
                Ok(x) => Ok(x),
                Err(QueryError::TooManyChains(_)) => {
                    Ok(pxml_algebra::naive::exists_global(pi, p)?)
                }
                Err(e) => Err(e.into()),
            },
            Err(e) => Err(e.into()),
        },
    }
}

fn render_worlds(worlds: &WorldTable, top: Option<usize>) -> Vec<(String, f64)> {
    let mut rows: Vec<(String, f64)> =
        worlds.iter().map(|(s, p)| (s.render(), p)).collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    if let Some(n) = top {
        rows.truncate(n);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_core::fixtures::{chain, fig2_instance};

    #[test]
    fn point_query_via_ql_matches_engines() {
        let pi = fig2_instance();
        // T2 is exclusively reachable (tree path) — efficient engine.
        let out = run(&pi, "POINT T2 IN R.book.title").unwrap();
        let Output::Probability(p) = out else { panic!("probability expected") };
        assert!((p - 0.8).abs() < 1e-9);
        // A1 is shared — Auto falls through to inclusion–exclusion.
        let out = run(&pi, "POINT A1 IN R.book.author").unwrap();
        let Output::Probability(p) = out else { panic!("probability expected") };
        let worlds = enumerate_worlds(&pi).unwrap();
        let a1 = pi.oid("A1").unwrap();
        let path = PathExpr::parse(pi.catalog(), "R.book.author").unwrap();
        let direct = worlds.probability_that(|s| pxml_algebra::satisfies_sd(s, &path, a1));
        assert!((p - direct).abs() < 1e-9);
    }

    #[test]
    fn selection_via_ql() {
        let pi = chain(3, 0.5);
        let out = run(&pi, "SELECT r.next.next = o2").unwrap();
        let Output::Selected { selectivity, instance } = out else {
            panic!("selected expected")
        };
        assert!((selectivity - 0.25).abs() < 1e-12);
        assert_eq!(instance.object_count(), 4);
    }

    #[test]
    fn projection_via_ql_tree_and_dag() {
        let pi = chain(3, 0.5);
        let out = run(&pi, "PROJECT r.next").unwrap();
        assert!(matches!(out, Output::Instance(_)));
        // The Figure 2 instance routes to the global engine.
        let fig2 = fig2_instance();
        let out = run(&fig2, "PROJECT R.book.author").unwrap();
        assert!(matches!(out, Output::Worlds(_)));
    }

    #[test]
    fn single_and_descendant_projection_via_ql() {
        let pi = chain(2, 0.6);
        assert!(matches!(
            run(&pi, "PROJECT SINGLE r.next.next").unwrap(),
            Output::Instance(_)
        ));
        assert!(matches!(
            run(&pi, "PROJECT DESCENDANT r.next").unwrap(),
            Output::Instance(_)
        ));
        // A DAG routes descendant projection to the global engine.
        let fig2 = pxml_core::fixtures::fig2_instance();
        assert!(matches!(
            run(&fig2, "PROJECT DESCENDANT R.book.author").unwrap(),
            Output::Worlds(_)
        ));
    }

    #[test]
    fn chain_prob_exists_and_render() {
        let pi = chain(2, 0.5);
        let Output::Probability(p) = run(&pi, "CHAIN r.o1.o2").unwrap() else {
            panic!()
        };
        assert!((p - 0.25).abs() < 1e-12);
        let Output::Probability(e) = run(&pi, "EXISTS r.next").unwrap() else {
            panic!()
        };
        assert!((e - 0.5).abs() < 1e-12);
        assert!(matches!(run(&pi, "RENDER").unwrap(), Output::Text(_)));
    }

    #[test]
    fn worlds_query_sorts_and_truncates() {
        let pi = chain(1, 0.9);
        let Output::Worlds(ws) = run(&pi, "WORLDS TOP 2").unwrap() else { panic!() };
        assert_eq!(ws.len(), 2);
        assert!(ws[0].1 >= ws[1].1);
    }

    #[test]
    fn prob_uses_the_bayes_engine() {
        let pi = fig2_instance(); // shared A1: BN still exact
        let Output::Probability(p) = run(&pi, "PROB B1").unwrap() else { panic!() };
        assert!((p - 0.8).abs() < 1e-9);
    }

    #[test]
    fn unknown_names_error_cleanly() {
        let pi = chain(1, 0.5);
        assert!(matches!(run(&pi, "PROB ghost"), Err(QlError::UnknownName(_))));
        assert!(matches!(
            run(&pi, "PROJECT r.bogus"),
            Err(QlError::UnknownName(_))
        ));
    }

    #[test]
    fn engine_tree_refuses_dags() {
        let fig2 = fig2_instance();
        let q = crate::parser::parse("POINT A1 IN R.book.author").unwrap();
        assert!(execute(&fig2, &q, Engine::Tree).is_err());
        assert!(execute(&fig2, &q, Engine::Naive).is_ok());
    }
}
