//! Error types for the query language.

use std::fmt;

/// Errors raised while parsing or executing a query.
#[derive(Debug)]
#[allow(missing_docs)] // variant payload fields are self-describing
pub enum QlError {
    /// The query text failed to tokenise or parse.
    Parse { position: usize, message: String },
    /// A name in the query is not in the instance's catalog.
    UnknownName(String),
    /// An underlying model error.
    Core(pxml_core::CoreError),
    /// An underlying algebra error.
    Algebra(pxml_algebra::AlgebraError),
    /// An underlying query-engine error.
    Query(pxml_query::QueryError),
    /// No engine can answer this query on this instance.
    NoEngine(String),
}

impl fmt::Display for QlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QlError::Parse { position, message } => {
                write!(f, "parse error at token {position}: {message}")
            }
            QlError::UnknownName(n) => write!(f, "unknown name {n:?}"),
            QlError::Core(e) => write!(f, "{e}"),
            QlError::Algebra(e) => write!(f, "{e}"),
            QlError::Query(e) => write!(f, "{e}"),
            QlError::NoEngine(m) => write!(f, "no engine can answer: {m}"),
        }
    }
}

impl std::error::Error for QlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QlError::Core(e) => Some(e),
            QlError::Algebra(e) => Some(e),
            QlError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pxml_core::CoreError> for QlError {
    fn from(e: pxml_core::CoreError) -> Self {
        QlError::Core(e)
    }
}
impl From<pxml_algebra::AlgebraError> for QlError {
    fn from(e: pxml_algebra::AlgebraError) -> Self {
        QlError::Algebra(e)
    }
}
impl From<pxml_query::QueryError> for QlError {
    fn from(e: pxml_query::QueryError) -> Self {
        QlError::Query(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T, E = QlError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = QlError::Parse { position: 3, message: "expected path".into() };
        assert!(e.to_string().contains("token 3"));
        let e: QlError = pxml_core::CoreError::MissingRoot.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
