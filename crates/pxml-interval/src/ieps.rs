//! Interval ε propagation: sound bounds on point and existential path
//! probabilities over interval instances.
//!
//! The §6.2 ε recursion is evaluated in interval arithmetic, bottom-up
//! over the tree-shaped kept region. Per OPF entry the survival factor
//! `1 − Π_{kept j ∈ c} (1 − ε_j)` becomes an interval; the expectation
//! `Σ_c ℘(c)·s_c` over entry-probability intervals constrained to the
//! simplex is bounded *exactly* by a greedy allocation
//! ([`bound_expectation`]). The per-entry relaxation (children's ε may
//! be chosen per entry) makes the final bounds **sound but possibly
//! loose**: every point instance inside the envelope is guaranteed to
//! fall inside the returned interval — the PIXML [14] reading.

use std::collections::HashMap;

use pxml_algebra::locate::layers_weak;
use pxml_algebra::path::PathExpr;
use pxml_algebra::project_sd::kept_roles;
use pxml_core::ObjectId;

use crate::iopf::IProbInstance;
use crate::iprob::{tighten, Interval};

/// Bounds `Σ_i p_i·v_i` over `p` in the probability simplex intersected
/// with the boxes — exact via greedy mass allocation on the tightened
/// family. Returns `None` when the family is incoherent.
pub fn bound_expectation(intervals: &[Interval], values: &[Interval]) -> Option<Interval> {
    assert_eq!(intervals.len(), values.len());
    let tight = tighten(intervals)?;
    let hi = extreme(&tight, values, true);
    let lo = extreme(&tight, values, false);
    Some(Interval { lo, hi })
}

/// Greedy extreme of the expectation: start every entry at its lower
/// bound, then pour the remaining mass into the most (or least)
/// valuable entries first.
fn extreme(tight: &[Interval], values: &[Interval], maximise: bool) -> f64 {
    let mut order: Vec<usize> = (0..tight.len()).collect();
    order.sort_by(|&a, &b| {
        let va = if maximise { values[a].hi } else { values[a].lo };
        let vb = if maximise { values[b].hi } else { values[b].lo };
        if maximise {
            vb.partial_cmp(&va).unwrap_or(std::cmp::Ordering::Equal)
        } else {
            va.partial_cmp(&vb).unwrap_or(std::cmp::Ordering::Equal)
        }
    });
    let mut mass: Vec<f64> = tight.iter().map(|i| i.lo).collect();
    let mut remaining: f64 = 1.0 - mass.iter().sum::<f64>();
    for &i in &order {
        if remaining <= 1e-15 {
            break;
        }
        let slack = (tight[i].hi - mass[i]).min(remaining);
        mass[i] += slack;
        remaining -= slack;
    }
    mass.iter()
        .zip(values)
        .map(|(&p, v)| p * if maximise { v.hi } else { v.lo })
        .sum()
}

/// Sound bounds on `P(∃o: o ∈ p)` for a tree-shaped interval instance.
pub fn interval_exists_query(ipi: &IProbInstance, p: &PathExpr) -> Option<Interval> {
    let layers = layers_weak(ipi.weak(), p);
    let located = layers.last().cloned().unwrap_or_default();
    if located.is_empty() {
        return Some(Interval::point(0.0));
    }
    epsilon_interval(ipi, p, &layers, &located)
}

/// Sound bounds on `P(o ∈ p)` for a tree-shaped interval instance.
pub fn interval_point_query(
    ipi: &IProbInstance,
    p: &PathExpr,
    o: ObjectId,
) -> Option<Interval> {
    let layers = layers_weak(ipi.weak(), p);
    let located = layers.last().cloned().unwrap_or_default();
    if located.binary_search(&o).is_err() {
        return Some(Interval::point(0.0));
    }
    epsilon_interval(ipi, p, &layers, &[o])
}

fn epsilon_interval(
    ipi: &IProbInstance,
    p: &PathExpr,
    layers: &[Vec<ObjectId>],
    targets: &[ObjectId],
) -> Option<Interval> {
    let weak = ipi.weak();
    let n = p.labels.len();
    let mut restricted = layers.to_vec();
    let mut final_layer: Vec<ObjectId> = targets.to_vec();
    final_layer.sort_unstable();
    final_layer.dedup();
    restricted[n] = final_layer;
    let kept = kept_roles(&restricted, &p.labels, |x, l| {
        weak.weak_edges(x)
            .into_iter()
            .filter(|&(el, _)| el == l)
            .map(|(_, c)| c)
            .collect()
    });

    // Tree-shape requirement (single role per object).
    let mut roles: HashMap<ObjectId, usize> = HashMap::new();
    for (depth, objs) in kept.iter().enumerate() {
        for &x in objs {
            if roles.insert(x, depth).is_some() {
                return None;
            }
        }
    }

    let mut eps: HashMap<ObjectId, Interval> = HashMap::new();
    for &t in &kept[n] {
        eps.insert(t, Interval::point(1.0));
    }
    for depth in (0..n).rev() {
        for &x in &kept[depth] {
            let node = weak.node(x)?;
            let iopf = ipi.iopf(x)?;
            // Per-entry survival intervals.
            let kept_children: Vec<(u32, Interval)> = node
                .universe()
                .iter()
                .filter(|&(_, c, l)| {
                    l == p.labels[depth] && kept[depth + 1].binary_search(&c).is_ok()
                })
                .map(|(pos, c, _)| {
                    (pos, eps.get(&c).copied().unwrap_or(Interval::point(0.0)))
                })
                .collect();
            let mut probs = Vec::with_capacity(iopf.entries().len());
            let mut values = Vec::with_capacity(iopf.entries().len());
            for (set, interval) in iopf.entries() {
                let mut none_lo = 1.0; // all ε at their hi ⇒ min none-survive
                let mut none_hi = 1.0;
                for &(pos, e) in &kept_children {
                    if set.contains_pos(pos) {
                        none_lo *= 1.0 - e.hi;
                        none_hi *= 1.0 - e.lo;
                    }
                }
                probs.push(*interval);
                values.push(Interval {
                    lo: (1.0 - none_hi).clamp(0.0, 1.0),
                    hi: (1.0 - none_lo).clamp(0.0, 1.0),
                });
            }
            let e_x = bound_expectation(&probs, &values)?;
            eps.insert(x, e_x);
        }
    }
    eps.get(&weak.root()).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iopf::IOpf;
    use pxml_core::ids::IdMap;
    use pxml_core::{ChildSet, WeakInstance};
    use pxml_query::exists_query;

    #[test]
    fn bound_expectation_on_degenerate_family_is_exact() {
        let probs = [Interval::point(0.25), Interval::point(0.75)];
        let values = [Interval::point(1.0), Interval::point(0.0)];
        let b = bound_expectation(&probs, &values).unwrap();
        assert!((b.lo - 0.25).abs() < 1e-12);
        assert!((b.hi - 0.25).abs() < 1e-12);
    }

    #[test]
    fn bound_expectation_pours_mass_greedily() {
        // Two entries, each in [0.2, 0.8]: the maximiser puts 0.8 on the
        // valuable one, the minimiser 0.2.
        let probs = [Interval::new(0.2, 0.8), Interval::new(0.2, 0.8)];
        let values = [Interval::point(1.0), Interval::point(0.0)];
        let b = bound_expectation(&probs, &values).unwrap();
        assert!((b.hi - 0.8).abs() < 1e-12);
        assert!((b.lo - 0.2).abs() < 1e-12);
    }

    #[test]
    fn bound_expectation_rejects_incoherent_families() {
        let probs = [Interval::new(0.0, 0.2), Interval::new(0.0, 0.2)];
        let values = [Interval::point(1.0), Interval::point(1.0)];
        assert!(bound_expectation(&probs, &values).is_none());
    }

    /// r → o1 → o2 chain with per-link probability intervals.
    fn interval_chain(l1: (f64, f64), l2: (f64, f64)) -> (IProbInstance, PathExpr) {
        let mut b = WeakInstance::builder();
        let r = b.object("r");
        let o1 = b.object("o1");
        let o2 = b.object("o2");
        let l = b.label("next");
        b.lch(r, l, &[o1]);
        b.lch(o1, l, &[o2]);
        let weak = b.build(r).unwrap();
        let mk = |o: ObjectId, (lo, hi): (f64, f64)| {
            let u = weak.node(o).unwrap().universe();
            IOpf::from_entries([
                (ChildSet::full(u), Interval::new(lo, hi)),
                (ChildSet::empty(u), Interval::new(1.0 - hi, 1.0 - lo)),
            ])
        };
        let mut iopf = IdMap::new();
        iopf.insert(r, mk(r, l1));
        iopf.insert(o1, mk(o1, l2));
        let path = PathExpr::new(r, [l, l]);
        (IProbInstance::new(weak, iopf, IdMap::new()).unwrap(), path)
    }

    #[test]
    fn interval_exists_bounds_are_the_link_products() {
        let (ipi, p) = interval_chain((0.4, 0.6), (0.5, 0.7));
        let b = interval_exists_query(&ipi, &p).unwrap();
        assert!((b.lo - 0.2).abs() < 1e-9);
        assert!((b.hi - 0.42).abs() < 1e-9);
    }

    #[test]
    fn point_instances_fall_inside_the_exists_bounds() {
        let (ipi, p) = interval_chain((0.3, 0.8), (0.1, 0.9));
        let bounds = interval_exists_query(&ipi, &p).unwrap();
        let pi = ipi.instantiate().unwrap();
        let exact = exists_query(&pi, &p).unwrap();
        assert!(
            bounds.contains(exact),
            "{exact} outside [{}, {}]",
            bounds.lo,
            bounds.hi
        );
    }

    #[test]
    fn unreachable_path_gives_point_zero() {
        let (ipi, _) = interval_chain((0.4, 0.6), (0.5, 0.7));
        let r = ipi.weak().root();
        let ghost_label = pxml_core::Label::from_raw(99);
        let p = PathExpr::new(r, [ghost_label]);
        let b = interval_exists_query(&ipi, &p).unwrap();
        assert_eq!((b.lo, b.hi), (0.0, 0.0));
    }

    #[test]
    fn interval_point_query_on_target() {
        let (ipi, p) = interval_chain((0.5, 0.5), (0.25, 0.25));
        let o2 = ipi.weak().catalog().find_object("o2").unwrap();
        let b = interval_point_query(&ipi, &p, o2).unwrap();
        assert!((b.lo - 0.125).abs() < 1e-9);
        assert!((b.hi - 0.125).abs() < 1e-9);
    }
}
