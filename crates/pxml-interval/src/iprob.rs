//! Probability intervals and coherence.
//!
//! The paper's companion work (Hung, Getoor & Subrahmanian, *Probabilistic
//! Interval XML*, ICDT 2003 — reference [14]) replaces point probabilities
//! with intervals `[lo, hi]`. A family of intervals over an exhaustive,
//! mutually exclusive event set is **coherent** iff some point
//! distribution fits inside every interval, i.e. `Σ lo ≤ 1 ≤ Σ hi`.
//! Tightening shrinks each interval to the values actually attainable.

/// A closed probability interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// Creates an interval; requires `0 ≤ lo ≤ hi ≤ 1`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!((0.0..=1.0).contains(&lo) && lo <= hi && hi <= 1.0, "bad interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The degenerate point interval.
    pub fn point(p: f64) -> Self {
        Interval::new(p, p)
    }

    /// True if `p` lies inside.
    pub fn contains(&self, p: f64) -> bool {
        self.lo - 1e-12 <= p && p <= self.hi + 1e-12
    }

    /// Interval product (both operands non-negative).
    pub fn mul(&self, other: &Interval) -> Interval {
        Interval { lo: self.lo * other.lo, hi: self.hi * other.hi }
    }

    /// Interval intersection, if non-empty.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi + 1e-12).then(|| Interval { lo, hi: hi.max(lo) })
    }

    /// Complement `1 - [lo, hi]`.
    pub fn complement(&self) -> Interval {
        Interval { lo: 1.0 - self.hi, hi: 1.0 - self.lo }
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// True iff a point distribution fits the intervals: `Σ lo ≤ 1 ≤ Σ hi`.
pub fn coherent(intervals: &[Interval]) -> bool {
    let lo: f64 = intervals.iter().map(|i| i.lo).sum();
    let hi: f64 = intervals.iter().map(|i| i.hi).sum();
    lo <= 1.0 + 1e-9 && hi >= 1.0 - 1e-9
}

/// Tightens a coherent family: each bound is clamped to the attainable
/// range given the other intervals
/// (`lo_i' = max(lo_i, 1 - Σ_{j≠i} hi_j)`, `hi_i' = min(hi_i, 1 - Σ_{j≠i} lo_j)`).
/// Returns `None` when the family is incoherent.
pub fn tighten(intervals: &[Interval]) -> Option<Vec<Interval>> {
    if !coherent(intervals) {
        return None;
    }
    let sum_lo: f64 = intervals.iter().map(|i| i.lo).sum();
    let sum_hi: f64 = intervals.iter().map(|i| i.hi).sum();
    Some(
        intervals
            .iter()
            .map(|i| {
                let others_hi = sum_hi - i.hi;
                let others_lo = sum_lo - i.lo;
                Interval {
                    lo: i.lo.max(1.0 - others_hi).clamp(0.0, 1.0),
                    hi: i.hi.min(1.0 - others_lo).clamp(0.0, 1.0),
                }
            })
            .collect(),
    )
}

/// A canonical point distribution inside a coherent family: starts from
/// the tightened lower bounds and distributes the remaining mass greedily.
pub fn pick_point(intervals: &[Interval]) -> Option<Vec<f64>> {
    let tight = tighten(intervals)?;
    let mut probs: Vec<f64> = tight.iter().map(|i| i.lo).collect();
    let mut remaining = 1.0 - probs.iter().sum::<f64>();
    for (p, i) in probs.iter_mut().zip(&tight) {
        if remaining <= 1e-15 {
            break;
        }
        let slack = (i.hi - *p).min(remaining);
        *p += slack;
        remaining -= slack;
    }
    (remaining.abs() < 1e-9).then_some(probs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: &Interval, b: &Interval) -> bool {
        (a.lo - b.lo).abs() < 1e-9 && (a.hi - b.hi).abs() < 1e-9
    }

    #[test]
    fn interval_arithmetic() {
        let a = Interval::new(0.2, 0.5);
        let b = Interval::new(0.4, 0.8);
        assert!(approx(&a.mul(&b), &Interval { lo: 0.08, hi: 0.4 }));
        assert_eq!(a.complement(), Interval { lo: 0.5, hi: 0.8 });
        assert!(a.contains(0.3));
        assert!(!a.contains(0.6));
        assert_eq!(a.intersect(&b).unwrap(), Interval { lo: 0.4, hi: 0.5 });
        assert!(a.intersect(&Interval::new(0.9, 1.0)).is_none());
    }

    #[test]
    fn coherence_requires_one_in_the_sum_range() {
        assert!(coherent(&[Interval::new(0.2, 0.6), Interval::new(0.3, 0.7)]));
        assert!(!coherent(&[Interval::new(0.6, 0.7), Interval::new(0.6, 0.7)])); // Σlo > 1
        assert!(!coherent(&[Interval::new(0.1, 0.2), Interval::new(0.1, 0.3)])); // Σhi < 1
    }

    #[test]
    fn tighten_clamps_to_attainable_bounds() {
        // With the other interval at most 0.3, the first must be ≥ 0.7.
        let t = tighten(&[Interval::new(0.0, 1.0), Interval::new(0.1, 0.3)]).unwrap();
        assert!((t[0].lo - 0.7).abs() < 1e-12);
        assert!((t[0].hi - 0.9).abs() < 1e-12);
        assert_eq!(t[1], Interval::new(0.1, 0.3));
    }

    #[test]
    fn tighten_is_idempotent() {
        let fam = [Interval::new(0.1, 0.9), Interval::new(0.2, 0.5)];
        let once = tighten(&fam).unwrap();
        let twice = tighten(&once).unwrap();
        for (a, b) in once.iter().zip(&twice) {
            assert!(approx(a, b), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn pick_point_lands_inside_every_interval() {
        let fam = [Interval::new(0.1, 0.6), Interval::new(0.2, 0.5), Interval::new(0.1, 0.4)];
        let p = pick_point(&fam).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let tight = tighten(&fam).unwrap();
        for (x, i) in p.iter().zip(&tight) {
            assert!(i.contains(*x));
        }
    }

    #[test]
    fn pick_point_fails_on_incoherent_family() {
        assert!(pick_point(&[Interval::new(0.0, 0.2), Interval::new(0.0, 0.3)]).is_none());
    }
}
