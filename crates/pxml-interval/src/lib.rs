//! # pxml-interval — interval probabilities (the PIXML track)
//!
//! The paper's introduction points to "a companion paper [14] [that]
//! describes an approach which uses interval probabilities". This crate
//! implements that extension over the same weak-instance skeleton:
//!
//! * [`iprob`] — probability intervals, coherence (`Σ lo ≤ 1 ≤ Σ hi`),
//!   tightening to attainable bounds, and canonical point selection;
//! * [`iopf`] — interval OPFs/VPFs and [`iopf::IProbInstance`], whose
//!   semantics is the *set* of point instances inside the intervals;
//! * [`ipoint`] — interval-valued chain queries whose bounds enclose the
//!   answer of every contained point instance;
//! * [`ieps`] — interval ε propagation: sound bounds on point and
//!   existential path probabilities, with an exact simplex-constrained
//!   expectation bound at each node.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ieps;
pub mod iopf;
pub mod ipoint;
pub mod iprob;

pub use ieps::{bound_expectation, interval_exists_query, interval_point_query};
pub use iopf::{IOpf, IProbInstance, IVpf};
pub use ipoint::interval_chain_probability;
pub use iprob::{coherent, pick_point, tighten, Interval};
