//! Interval-valued local interpretations and instances.

use pxml_core::ids::{IdMap, ObjectKind};
use pxml_core::{
    ChildSet, ObjectId, Opf, OpfTable, ProbInstance, Value, Vpf, WeakInstance,
};

use crate::iprob::{coherent, pick_point, tighten, Interval};

/// An interval OPF: each potential child set gets a probability interval.
#[derive(Clone, Debug, Default)]
pub struct IOpf {
    entries: Vec<(ChildSet, Interval)>,
}

impl IOpf {
    /// Builds from entries.
    pub fn from_entries(entries: impl IntoIterator<Item = (ChildSet, Interval)>) -> Self {
        IOpf { entries: entries.into_iter().collect() }
    }

    /// The entries.
    pub fn entries(&self) -> &[(ChildSet, Interval)] {
        &self.entries
    }

    /// True iff some point OPF fits all intervals.
    pub fn is_coherent(&self) -> bool {
        coherent(&self.entries.iter().map(|&(_, i)| i).collect::<Vec<_>>())
    }

    /// Tightens every interval to its attainable range.
    pub fn tighten(&self) -> Option<IOpf> {
        let tight = tighten(&self.entries.iter().map(|&(_, i)| i).collect::<Vec<_>>())?;
        Some(IOpf {
            entries: self
                .entries
                .iter()
                .zip(tight)
                .map(|((s, _), i)| (s.clone(), i))
                .collect(),
        })
    }

    /// The interval for `P(child at pos present)`: sum of member-set lows
    /// and highs, intersected with the complement constraint from the
    /// non-member sets.
    pub fn marginal_present(&self, pos: u32) -> Interval {
        let tight = self.tighten().unwrap_or_else(|| self.clone());
        let mut lo = 0.0;
        let mut hi = 0.0;
        let mut lo_out = 0.0;
        let mut hi_out = 0.0;
        for (s, i) in &tight.entries {
            if s.contains_pos(pos) {
                lo += i.lo;
                hi += i.hi;
            } else {
                lo_out += i.lo;
                hi_out += i.hi;
            }
        }
        let direct = Interval { lo: lo.min(1.0), hi: hi.min(1.0) };
        let via_complement =
            Interval { lo: (1.0 - hi_out).max(0.0), hi: (1.0 - lo_out).clamp(0.0, 1.0) };
        direct.intersect(&via_complement).unwrap_or(direct)
    }

    /// A canonical point OPF inside the intervals.
    pub fn pick_point(&self) -> Option<OpfTable> {
        let probs = pick_point(&self.entries.iter().map(|&(_, i)| i).collect::<Vec<_>>())?;
        Some(OpfTable::from_entries(
            self.entries.iter().zip(probs).map(|((s, _), p)| (s.clone(), p)),
        ))
    }

    /// True if the point table lies within every interval.
    pub fn contains(&self, table: &OpfTable) -> bool {
        self.entries.iter().all(|(s, i)| i.contains(table.prob(s)))
            && (table.total() - 1.0).abs() < 1e-9
    }
}

/// An interval VPF.
#[derive(Clone, Debug, Default)]
pub struct IVpf {
    entries: Vec<(Value, Interval)>,
}

impl IVpf {
    /// Builds from entries.
    pub fn from_entries(entries: impl IntoIterator<Item = (Value, Interval)>) -> Self {
        IVpf { entries: entries.into_iter().collect() }
    }

    /// The entries.
    pub fn entries(&self) -> &[(Value, Interval)] {
        &self.entries
    }

    /// True iff some point VPF fits.
    pub fn is_coherent(&self) -> bool {
        coherent(&self.entries.iter().map(|&(_, i)| i).collect::<Vec<_>>())
    }

    /// A canonical point VPF inside the intervals.
    pub fn pick_point(&self) -> Option<Vpf> {
        let probs = pick_point(&self.entries.iter().map(|&(_, i)| i).collect::<Vec<_>>())?;
        Some(Vpf::from_entries(
            self.entries.iter().zip(probs).map(|((v, _), p)| (v.clone(), p)),
        ))
    }
}

/// An interval probabilistic instance: a weak instance whose local
/// interpretation maps to probability intervals instead of points.
#[derive(Clone, Debug)]
pub struct IProbInstance {
    weak: WeakInstance,
    iopf: IdMap<ObjectKind, IOpf>,
    ivpf: IdMap<ObjectKind, IVpf>,
}

impl IProbInstance {
    /// Assembles and checks coherence of every local family.
    pub fn new(
        weak: WeakInstance,
        iopf: IdMap<ObjectKind, IOpf>,
        ivpf: IdMap<ObjectKind, IVpf>,
    ) -> Option<Self> {
        let inst = IProbInstance { weak, iopf, ivpf };
        inst.is_coherent().then_some(inst)
    }

    /// The weak instance.
    pub fn weak(&self) -> &WeakInstance {
        &self.weak
    }

    /// The interval OPF of an object.
    pub fn iopf(&self, o: ObjectId) -> Option<&IOpf> {
        self.iopf.get(o)
    }

    /// The interval VPF of a leaf.
    pub fn ivpf(&self, o: ObjectId) -> Option<&IVpf> {
        self.ivpf.get(o)
    }

    /// True iff every local family is coherent.
    pub fn is_coherent(&self) -> bool {
        self.iopf.iter().all(|(_, f)| f.is_coherent())
            && self.ivpf.iter().all(|(_, f)| f.is_coherent())
    }

    /// Materialises a point probabilistic instance inside the intervals.
    pub fn instantiate(&self) -> Option<ProbInstance> {
        let mut opfs: IdMap<ObjectKind, Opf> = IdMap::new();
        for (o, f) in self.iopf.iter() {
            opfs.insert(o, Opf::Table(f.pick_point()?));
        }
        let mut vpfs: IdMap<ObjectKind, Vpf> = IdMap::new();
        for (o, f) in self.ivpf.iter() {
            vpfs.insert(o, f.pick_point()?);
        }
        ProbInstance::from_parts(self.weak.clone(), opfs, vpfs).ok()
    }

    /// True if a point instance over the same weak structure lies within
    /// every interval.
    pub fn contains(&self, pi: &ProbInstance) -> bool {
        for (o, f) in self.iopf.iter() {
            let Some(node) = pi.weak().node(o) else { return false };
            let Some(opf) = pi.opf(o) else { return false };
            if !f.contains(&opf.to_table(node.universe())) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_core::ChildUniverse;
    use pxml_core::Label;

    fn universe2() -> ChildUniverse {
        let l = Label::from_raw(0);
        ChildUniverse::from_members([
            (ObjectId::from_raw(1), l),
            (ObjectId::from_raw(2), l),
        ])
    }

    fn set(u: &ChildUniverse, ps: &[u32]) -> ChildSet {
        ChildSet::from_positions(u, ps.iter().copied())
    }

    #[test]
    fn iopf_coherence_and_pick_point() {
        let u = universe2();
        let f = IOpf::from_entries([
            (set(&u, &[]), Interval::new(0.1, 0.4)),
            (set(&u, &[0]), Interval::new(0.2, 0.5)),
            (set(&u, &[1]), Interval::new(0.1, 0.6)),
        ]);
        assert!(f.is_coherent());
        let point = f.pick_point().unwrap();
        assert!((point.total() - 1.0).abs() < 1e-9);
        assert!(f.contains(&point));
    }

    #[test]
    fn incoherent_iopf_detected() {
        let u = universe2();
        let f = IOpf::from_entries([
            (set(&u, &[]), Interval::new(0.0, 0.2)),
            (set(&u, &[0]), Interval::new(0.0, 0.3)),
        ]);
        assert!(!f.is_coherent());
        assert!(f.pick_point().is_none());
        assert!(f.tighten().is_none());
    }

    #[test]
    fn marginal_present_bounds_all_point_marginals() {
        let u = universe2();
        let f = IOpf::from_entries([
            (set(&u, &[]), Interval::new(0.1, 0.4)),
            (set(&u, &[0]), Interval::new(0.2, 0.5)),
            (set(&u, &[0, 1]), Interval::new(0.2, 0.6)),
        ]);
        let m = f.marginal_present(0);
        // Any point distribution (p∅, p0, p01) summing to 1 within the
        // intervals has marginal p0 + p01 = 1 - p∅ ∈ [0.6, 0.9].
        assert!((m.lo - 0.6).abs() < 1e-9);
        assert!((m.hi - 0.9).abs() < 1e-9);
        let point = f.pick_point().unwrap();
        assert!(m.contains(point.marginal_present(0)));
    }

    #[test]
    fn point_opf_is_degenerate_interval_opf() {
        let u = universe2();
        let f = IOpf::from_entries([
            (set(&u, &[]), Interval::point(0.25)),
            (set(&u, &[0]), Interval::point(0.75)),
        ]);
        assert!(f.is_coherent());
        let point = f.pick_point().unwrap();
        assert!((point.prob(&set(&u, &[0])) - 0.75).abs() < 1e-12);
    }
}
