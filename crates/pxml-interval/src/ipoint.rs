//! Interval-valued point queries: chain probabilities with bounds.
//!
//! An interval instance denotes the *set* of point instances inside its
//! intervals; an interval query returns bounds enclosing the answer of
//! every such point instance (the PIXML [14] reading).

use pxml_core::ObjectId;

use crate::iopf::IProbInstance;
use crate::iprob::Interval;

/// The interval of `P(r.o₁.….oᵢ)` over all point instances within the
/// interval instance: the product of per-link marginal intervals.
pub fn interval_chain_probability(
    ipi: &IProbInstance,
    chain: &[ObjectId],
) -> Option<Interval> {
    let (&first, rest) = chain.split_first()?;
    if first != ipi.weak().root() {
        return None;
    }
    let mut acc = Interval::point(1.0);
    let mut parent = first;
    for &child in rest {
        let node = ipi.weak().node(parent)?;
        let pos = node.universe().position(child)?;
        let iopf = ipi.iopf(parent)?;
        acc = acc.mul(&iopf.marginal_present(pos));
        parent = child;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iopf::{IOpf, IProbInstance};
    use crate::iprob::Interval;
    use pxml_core::ids::IdMap;
    use pxml_core::{ChildSet, WeakInstance};
    use pxml_query::chain_probability;

    /// r → o1 → o2 with link probabilities in [0.4,0.6] and [0.5,0.7].
    fn interval_chain() -> (IProbInstance, Vec<pxml_core::ObjectId>) {
        let mut b = WeakInstance::builder();
        let r = b.object("r");
        let o1 = b.object("o1");
        let o2 = b.object("o2");
        let l = b.label("next");
        b.lch(r, l, &[o1]);
        b.lch(o1, l, &[o2]);
        let weak = b.build(r).unwrap();
        let mk = |o: pxml_core::ObjectId, lo: f64, hi: f64| {
            let node = weak.node(o).unwrap();
            let u = node.universe();
            IOpf::from_entries([
                (ChildSet::full(u), Interval::new(lo, hi)),
                (ChildSet::empty(u), Interval::new(1.0 - hi, 1.0 - lo)),
            ])
        };
        let mut iopf = IdMap::new();
        iopf.insert(r, mk(r, 0.4, 0.6));
        iopf.insert(o1, mk(o1, 0.5, 0.7));
        let ipi = IProbInstance::new(weak, iopf, IdMap::new()).unwrap();
        (ipi, vec![r, o1, o2])
    }

    #[test]
    fn chain_interval_is_product_of_link_intervals() {
        let (ipi, chain) = interval_chain();
        let iv = interval_chain_probability(&ipi, &chain).unwrap();
        assert!((iv.lo - 0.2).abs() < 1e-9);
        assert!((iv.hi - 0.42).abs() < 1e-9);
    }

    #[test]
    fn instantiated_point_instance_falls_inside_the_bounds() {
        let (ipi, chain) = interval_chain();
        let iv = interval_chain_probability(&ipi, &chain).unwrap();
        let pi = ipi.instantiate().unwrap();
        assert!(ipi.contains(&pi));
        let p = chain_probability(&pi, &chain).unwrap();
        assert!(iv.contains(p), "point {p} outside [{}, {}]", iv.lo, iv.hi);
    }

    #[test]
    fn degenerate_intervals_recover_point_semantics() {
        let mut b = WeakInstance::builder();
        let r = b.object("r");
        let o1 = b.object("o1");
        let l = b.label("next");
        b.lch(r, l, &[o1]);
        let weak = b.build(r).unwrap();
        let u = weak.node(r).unwrap().universe().clone();
        let mut iopf = IdMap::new();
        iopf.insert(
            r,
            IOpf::from_entries([
                (ChildSet::full(&u), Interval::point(0.3)),
                (ChildSet::empty(&u), Interval::point(0.7)),
            ]),
        );
        let ipi = IProbInstance::new(weak, iopf, IdMap::new()).unwrap();
        let iv = interval_chain_probability(&ipi, &[r, o1]).unwrap();
        assert!((iv.lo - 0.3).abs() < 1e-9);
        assert!((iv.hi - 0.3).abs() < 1e-9);
    }

    #[test]
    fn wrong_root_returns_none() {
        let (ipi, chain) = interval_chain();
        assert!(interval_chain_probability(&ipi, &chain[1..]).is_none());
    }
}
