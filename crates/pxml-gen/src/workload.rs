//! The full Figure 7 parameter sweep.
//!
//! §7.1: depths 3–9, branching factors 2–8, both labelings; "for each
//! depth, each branching factor and each operation, we generated 10
//! instances … For each combination we took the average of 100 such
//! queries." The grid here is parameterised so the bench harness can run
//! a scaled-down sweep quickly and the full sweep on demand.

use crate::config::{Labeling, WorkloadConfig};

/// One cell of the experimental grid.
#[derive(Clone, Debug)]
pub struct GridCell {
    /// Instance configuration (seed varies per repetition).
    pub config: WorkloadConfig,
    /// Number of instances per cell (10 in the paper).
    pub instances: usize,
    /// Number of queries per instance (10 in the paper).
    pub queries_per_instance: usize,
}

/// The experimental grid.
#[derive(Clone, Debug)]
pub struct Grid {
    /// All cells in sweep order.
    pub cells: Vec<GridCell>,
}

impl Grid {
    /// The paper's full grid: depth 3–9 × branching 2–8 × {SL, FR},
    /// skipping cells whose object count exceeds `max_objects`.
    pub fn paper_grid(max_objects: u64, instances: usize, queries: usize) -> Grid {
        let mut cells = Vec::new();
        for &labeling in &[Labeling::SameLabel, Labeling::FullyRandom] {
            for branching in 2..=8 {
                for depth in 3..=9 {
                    let config = WorkloadConfig::paper(depth, branching, labeling, 0);
                    if config.object_count() <= max_objects {
                        cells.push(GridCell {
                            config,
                            instances,
                            queries_per_instance: queries,
                        });
                    }
                }
            }
        }
        Grid { cells }
    }

    /// A small smoke grid for CI and unit tests.
    pub fn smoke() -> Grid {
        Grid::paper_grid(1_000, 2, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_covers_both_labelings() {
        let g = Grid::paper_grid(100_000, 10, 10);
        assert!(g.cells.iter().any(|c| c.config.labeling == Labeling::SameLabel));
        assert!(g.cells.iter().any(|c| c.config.labeling == Labeling::FullyRandom));
        // Every cell respects the cap.
        for c in &g.cells {
            assert!(c.config.object_count() <= 100_000);
        }
    }

    #[test]
    fn grid_includes_the_paper_ranges() {
        let g = Grid::paper_grid(u64::MAX, 10, 10);
        let depths: std::collections::HashSet<_> =
            g.cells.iter().map(|c| c.config.depth).collect();
        let branchings: std::collections::HashSet<_> =
            g.cells.iter().map(|c| c.config.branching).collect();
        assert_eq!(depths, (3..=9).collect());
        assert_eq!(branchings, (2..=8).collect());
    }

    #[test]
    fn smoke_grid_is_small() {
        let g = Grid::smoke();
        assert!(!g.cells.is_empty());
        assert!(g.cells.iter().all(|c| c.config.object_count() <= 1_000));
    }
}
