//! Random mutation-op generation for benchmarks and differential tests.
//!
//! The steady-state write workload of a probabilistic store is
//! overwhelmingly *entry-level*: probabilities drift as evidence
//! arrives, while the skeleton changes rarely. [`random_mutations`]
//! therefore draws from the two entry-level op kinds — `SETEDGE`
//! (re-mix an OPF marginal) and `SETVAL` (re-weight a VPF entry) — with
//! targets and probabilities chosen so that **every generated op applies
//! cleanly regardless of interleaving**: edge targets keep marginals
//! strictly inside `(0, 1)` and value targets keep positive residual
//! mass, so no sequence of generated ops can drive a distribution
//! degenerate. Structural ops (insert/delete/link/unlink) are
//! deliberately left to the tests that exercise them, which need
//! tighter control over reachability and cardinality.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pxml_core::{Mutation, ObjectId, ProbInstance, Value};

/// One safely re-mixable edge: the OPF marginal of `child` under
/// `parent` is strictly inside `(0, 1)`.
fn edge_candidates(pi: &ProbInstance) -> Vec<(ObjectId, ObjectId)> {
    let mut out = Vec::new();
    for o in pi.weak().objects() {
        let Some(node) = pi.weak().node(o) else { continue };
        let Some(opf) = pi.opf(o) else { continue };
        for (pos, child, _) in node.universe().iter() {
            let m = opf.marginal_present(pos);
            if m > 0.0 && m < 1.0 {
                out.push((o, child));
            }
        }
    }
    out.sort_unstable();
    out
}

/// One safely re-weightable leaf value: the VPF has at least two
/// entries and the chosen value holds less than the whole mass.
fn value_candidates(pi: &ProbInstance) -> Vec<(ObjectId, Value)> {
    let mut out = Vec::new();
    let mut leaves: Vec<ObjectId> = pi.weak().objects().collect();
    leaves.sort_unstable();
    for o in leaves {
        let Some(vpf) = pi.vpf(o) else { continue };
        if vpf.len() < 2 {
            continue;
        }
        for (v, p) in vpf.iter() {
            if p < 0.999 {
                out.push((o, v.clone()));
            }
        }
    }
    out
}

/// A deterministic batch of `count` entry-level mutations (roughly 4:1
/// `SETEDGE` : `SETVAL`) that apply cleanly against `pi` in any order
/// and any interleaving with queries. Returns fewer ops (possibly none)
/// when the instance offers no safe targets.
pub fn random_mutations(pi: &ProbInstance, count: usize, seed: u64) -> Vec<Mutation> {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges = edge_candidates(pi);
    let values = value_candidates(pi);
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        let want_value = !values.is_empty() && (edges.is_empty() || rng.gen_range(0..5) == 0);
        if want_value {
            let (object, value) = values[rng.gen_range(0..values.len())].clone();
            // Cap below 0.95 so repeated hits on the same leaf keep
            // positive residual mass for every other value.
            let prob = rng.gen_range(0.05..0.90);
            ops.push(Mutation::SetValueProb { object, value, prob });
        } else if !edges.is_empty() {
            let (parent, child) = edges[rng.gen_range(0..edges.len())];
            // Stay strictly inside (0, 1): the re-mix of a marginal at
            // 0 or 1 is degenerate, and later ops need the same slack.
            let prob = rng.gen_range(0.05..0.95);
            ops.push(Mutation::SetEdgeProb { parent, child, prob });
        } else {
            break; // nothing mutable in this instance
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadConfig;
    use crate::tree::generate;
    use pxml_core::fixtures::fig2_instance;

    #[test]
    fn generated_ops_apply_cleanly_in_order_and_reversed() {
        let g = generate(&WorkloadConfig::paper(6, 2, crate::config::Labeling::FullyRandom, 7));
        let ops = random_mutations(&g.instance, 50, 11);
        assert!(!ops.is_empty(), "paper workload must offer mutable targets");
        let mut fwd = g.instance.clone();
        for op in &ops {
            fwd.apply(op).expect("generated op applies");
        }
        fwd.validate().expect("instance stays coherent");
        let mut rev = g.instance.clone();
        for op in ops.iter().rev() {
            rev.apply(op).expect("generated op applies in reverse order");
        }
        rev.validate().expect("instance stays coherent reversed");
    }

    #[test]
    fn deterministic_in_the_seed() {
        let pi = fig2_instance();
        assert_eq!(random_mutations(&pi, 20, 3), random_mutations(&pi, 20, 3));
        assert_ne!(random_mutations(&pi, 20, 3), random_mutations(&pi, 20, 4));
    }

    #[test]
    fn ops_roundtrip_through_surface_syntax() {
        let pi = fig2_instance();
        let ops = random_mutations(&pi, 10, 99);
        let text = pxml_core::render_ops(&pi, &ops);
        let back = pxml_core::parse_ops(&pi, &text).unwrap();
        assert_eq!(back.len(), ops.len());
        // Probabilities survive the float round-trip exactly (shortest
        // round-trip formatting), so the ops compare equal.
        assert_eq!(back, ops);
    }
}
