//! Balanced-tree instance generation (Section 7.1).
//!
//! "We generated probabilistic instances as balanced trees with every
//! non-leaf node having the same number of children. […] We assume that
//! there is no cardinality constraint, so the total number of entries in
//! a local interpretation for each non-leaf object is 2^b."

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pxml_core::ids::{IdMap, ObjectKind};
use pxml_core::{
    Catalog, ChildSet, ChildUniverse, Label, LeafInfo, LeafType, ObjectId, Opf, OpfTable,
    ProbInstance, Value, Vpf, WeakInstance, WeakNode,
};

use crate::config::{Labeling, WorkloadConfig};

/// A generated instance plus the bookkeeping the query generator needs.
#[derive(Clone, Debug)]
pub struct GeneratedInstance {
    /// The probabilistic instance.
    pub instance: ProbInstance,
    /// For each edge depth `1..=d`, the labels actually used at that depth
    /// ("we kept track of labels used by edges of objects in each depth").
    pub depth_labels: Vec<Vec<Label>>,
    /// The configuration that produced the instance.
    pub config: WorkloadConfig,
}

/// Generates a probabilistic instance per §7.1. Deterministic in the seed.
pub fn generate(config: &WorkloadConfig) -> GeneratedInstance {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let b = config.branching;
    let d = config.depth;
    assert!((1..=63).contains(&b), "branching factor must be in 1..=63");
    assert!(d >= 1, "depth must be at least 1");

    let mut catalog = Catalog::new();
    // Per-depth label alphabets, e.g. depth 1 uses d1_0, d1_1, ...
    let alphabet: Vec<Vec<Label>> = (1..=d)
        .map(|depth| {
            (0..config.labels_per_depth.max(1))
                .map(|k| catalog.label(&format!("d{depth}_{k}")))
                .collect()
        })
        .collect();
    let leaf_ty = if config.leaf_domain > 0 {
        Some(catalog.define_type(LeafType::new(
            "leaf-type",
            (0..config.leaf_domain).map(|i| Value::Int(i as i64)),
        )))
    } else {
        None
    };

    let total = config.object_count() as usize;
    let non_leaves = config.non_leaf_count() as usize;
    let mut ids: Vec<ObjectId> = Vec::with_capacity(total);
    for i in 0..total {
        ids.push(catalog.object(&format!("n{i}")));
    }

    let mut nodes: IdMap<ObjectKind, WeakNode> = IdMap::new();
    let mut opfs: IdMap<ObjectKind, Opf> = IdMap::new();
    let mut vpfs: IdMap<ObjectKind, Vpf> = IdMap::new();
    let mut depth_labels: Vec<Vec<Label>> = vec![Vec::new(); d];

    // BFS numbering: node i's children are b*i+1 .. b*i+b.
    let mut depth_of = vec![0usize; total];
    for i in 0..non_leaves {
        for k in 0..b {
            depth_of[b * i + 1 + k] = depth_of[i] + 1;
        }
    }

    for i in 0..total {
        if i < non_leaves {
            let child_depth = depth_of[i] + 1;
            let letters = &alphabet[child_depth - 1];
            let parent_label = letters[rng.gen_range(0..letters.len())];
            let mut universe = ChildUniverse::new();
            for k in 0..b {
                let label = match config.labeling {
                    Labeling::SameLabel => parent_label,
                    Labeling::FullyRandom => letters[rng.gen_range(0..letters.len())],
                };
                if !depth_labels[child_depth - 1].contains(&label) {
                    depth_labels[child_depth - 1].push(label);
                }
                universe.push(ids[b * i + 1 + k], label);
            }
            // Random OPF over all 2^b subsets (no cardinality constraint).
            let entries = 1u64 << b;
            let mut weights: Vec<f64> = (0..entries).map(|_| rng.gen::<f64>() + 1e-9).collect();
            let total_w: f64 = weights.iter().sum();
            for w in &mut weights {
                *w /= total_w;
            }
            let table = OpfTable::from_entries(
                weights.into_iter().enumerate().map(|(m, p)| (ChildSet::Mask(m as u64), p)),
            );
            nodes.insert(ids[i], WeakNode::from_parts(universe, Vec::new(), None));
            opfs.insert(ids[i], Opf::Table(table));
        } else {
            // Leaf.
            let leaf = leaf_ty.map(|ty| LeafInfo { ty, val: None });
            nodes.insert(ids[i], WeakNode::from_parts(ChildUniverse::new(), Vec::new(), leaf));
            if leaf_ty.is_some() {
                let n = config.leaf_domain;
                let mut weights: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() + 1e-9).collect();
                let total_w: f64 = weights.iter().sum();
                for w in &mut weights {
                    *w /= total_w;
                }
                vpfs.insert(
                    ids[i],
                    Vpf::from_entries(
                        weights.into_iter().enumerate().map(|(v, p)| (Value::Int(v as i64), p)),
                    ),
                );
            }
        }
    }

    let weak = WeakInstance::from_parts(Arc::new(catalog), ids[0], nodes)
        .expect("generated tree is structurally valid");
    // Generated OPFs are normalised by construction and no cardinality
    // constraints exist, so the full validation would only re-derive
    // facts true by construction; still run it for small instances to
    // catch generator regressions cheaply.
    let instance = if total <= 10_000 {
        ProbInstance::from_parts(weak, opfs, vpfs).expect("generated instance is coherent")
    } else {
        ProbInstance::from_parts_unchecked(weak, opfs, vpfs)
    };
    GeneratedInstance { instance, depth_labels, config: config.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_tree_has_expected_shape() {
        let cfg = WorkloadConfig::paper(3, 2, Labeling::SameLabel, 42);
        let g = generate(&cfg);
        assert_eq!(g.instance.object_count() as u64, cfg.object_count());
        assert!(g.instance.weak().is_tree_shaped());
        assert!(g.instance.weak().is_acyclic());
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let cfg = WorkloadConfig::paper(3, 3, Labeling::FullyRandom, 7);
        let a = generate(&cfg);
        let b = generate(&cfg);
        let r = a.instance.root();
        let node_a = a.instance.weak().node(r).unwrap();
        let node_b = b.instance.weak().node(r).unwrap();
        let ta = a.instance.opf(r).unwrap().to_table(node_a.universe());
        let tb = b.instance.opf(r).unwrap().to_table(node_b.universe());
        for (set, p) in ta.iter() {
            assert_eq!(tb.prob(set), p);
        }
        assert_eq!(a.depth_labels, b.depth_labels);
    }

    #[test]
    fn opf_has_2_pow_b_entries() {
        for b in [2usize, 3, 4] {
            let cfg = WorkloadConfig::paper(2, b, Labeling::SameLabel, 1);
            let g = generate(&cfg);
            let r = g.instance.root();
            let node = g.instance.weak().node(r).unwrap();
            let table = g.instance.opf(r).unwrap().to_table(node.universe());
            assert_eq!(table.len(), 1 << b);
            assert!((table.total() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn same_label_children_share_one_label() {
        let cfg = WorkloadConfig::paper(3, 4, Labeling::SameLabel, 5);
        let g = generate(&cfg);
        for o in g.instance.objects() {
            let node = g.instance.weak().node(o).unwrap();
            if !node.is_childless() {
                assert_eq!(node.labels().len(), 1, "SL: one label per parent");
            }
        }
    }

    #[test]
    fn fully_random_uses_multiple_labels_somewhere() {
        let cfg = WorkloadConfig::paper(3, 8, Labeling::FullyRandom, 5);
        let g = generate(&cfg);
        let multi = g
            .instance
            .objects()
            .filter_map(|o| g.instance.weak().node(o))
            .any(|n| n.labels().len() > 1);
        assert!(multi, "FR labelling should mix labels under some parent");
    }

    #[test]
    fn depth_labels_track_usage() {
        let cfg = WorkloadConfig::paper(4, 2, Labeling::FullyRandom, 11);
        let g = generate(&cfg);
        assert_eq!(g.depth_labels.len(), 4);
        for labels in &g.depth_labels {
            assert!(!labels.is_empty());
            assert!(labels.len() <= cfg.labels_per_depth);
        }
    }

    #[test]
    fn leaves_get_vpfs_when_domain_positive() {
        let mut cfg = WorkloadConfig::paper(2, 2, Labeling::SameLabel, 3);
        cfg.leaf_domain = 3;
        let g = generate(&cfg);
        let leaf_count = g
            .instance
            .objects()
            .filter(|&o| g.instance.vpf(o).is_some())
            .count() as u64;
        assert_eq!(leaf_count, cfg.object_count() - cfg.non_leaf_count());
        g.instance.validate().unwrap();
    }

    #[test]
    fn world_probabilities_sum_to_one_on_small_instances() {
        let cfg = WorkloadConfig::paper(2, 2, Labeling::SameLabel, 9);
        let g = generate(&cfg);
        let worlds = pxml_core::enumerate_worlds(&g.instance).unwrap();
        assert!((worlds.total() - 1.0).abs() < 1e-6);
    }
}
