//! Random query generation (Section 7.1).
//!
//! "For each instance, we kept track of labels used by edges of objects
//! in each depth and generated 10 random queries that returned results
//! not only consisting of a root. […] we set the length of the query
//! equal to the depth of the instance."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pxml_algebra::locate::locate_weak;
use pxml_algebra::path::PathExpr;
use pxml_algebra::selection::SelectCond;
use pxml_core::ObjectId;

use crate::tree::GeneratedInstance;

/// Generates one random ancestor-projection path query of length equal to
/// the instance depth, retrying until some object satisfies it. Returns
/// `None` if no accepted query is found within `max_attempts`.
pub fn random_path_query(
    g: &GeneratedInstance,
    rng: &mut StdRng,
    max_attempts: usize,
) -> Option<PathExpr> {
    for _ in 0..max_attempts {
        let labels: Vec<_> = g
            .depth_labels
            .iter()
            .map(|ls| ls[rng.gen_range(0..ls.len())])
            .collect();
        let p = PathExpr::new(g.instance.root(), labels);
        if !locate_weak(&g.instance, &p).is_empty() {
            return Some(p);
        }
    }
    None
}

/// Generates one random selection query `p = o`: a random accepted path
/// plus a random object from `SelObj`, the set satisfying it (§7.1).
pub fn random_selection_query(
    g: &GeneratedInstance,
    rng: &mut StdRng,
    max_attempts: usize,
) -> Option<(SelectCond, ObjectId)> {
    for _ in 0..max_attempts {
        let Some(p) = random_path_query(g, rng, max_attempts) else { continue };
        let sel_obj = locate_weak(&g.instance, &p);
        if sel_obj.is_empty() {
            continue;
        }
        let o = sel_obj[rng.gen_range(0..sel_obj.len())];
        return Some((SelectCond::ObjectAt(p, o), o));
    }
    None
}

/// A deterministic batch of accepted path queries for one instance.
pub fn query_batch(g: &GeneratedInstance, count: usize, seed: u64) -> Vec<PathExpr> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if let Some(q) = random_path_query(g, &mut rng, 1000) {
            out.push(q);
        }
    }
    out
}

/// A deterministic batch of accepted selection queries for one instance.
pub fn selection_batch(
    g: &GeneratedInstance,
    count: usize,
    seed: u64,
) -> Vec<(SelectCond, ObjectId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if let Some(q) = random_selection_query(g, &mut rng, 1000) {
            out.push(q);
        }
    }
    out
}

/// One entry of a static-analysis workload: a path query plus an
/// optional point target (`None` means an existence query on the path),
/// tagged with whether the query is satisfiable by construction.
///
/// Unsatisfiable entries are built two ways — a path that locates no
/// object in the weak graph, and a point target that the path never
/// locates — matching the two `ProvablyZero` shapes the static analyser
/// proves, so an analyser run over a batch has ground truth to compare
/// against without evaluating anything.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnalysisQuery {
    /// The path expression.
    pub path: PathExpr,
    /// Point target; `None` for an existence query.
    pub target: Option<ObjectId>,
    /// True when the query can hold in some compatible world's weak
    /// graph (probability may still be anything in `[0, 1]`).
    pub satisfiable: bool,
}

/// Generates one provably-dead path: random per-depth labels that locate
/// nothing. Returns `None` when the labelling is too regular for a dead
/// combination to exist (e.g. `SameLabel` with one label per depth).
pub fn random_dead_path(
    g: &GeneratedInstance,
    rng: &mut StdRng,
    max_attempts: usize,
) -> Option<PathExpr> {
    for _ in 0..max_attempts {
        let labels: Vec<_> = g
            .depth_labels
            .iter()
            .map(|ls| ls[rng.gen_range(0..ls.len())])
            .collect();
        let p = PathExpr::new(g.instance.root(), labels);
        if locate_weak(&g.instance, &p).is_empty() {
            return Some(p);
        }
    }
    None
}

/// A deterministic mixed workload for exercising static query analysis:
/// cycles through satisfiable existence queries, satisfiable point
/// queries on a located object, dead paths, and point queries whose
/// target (the root) is never located. Shapes that the instance cannot
/// produce (a dead path under `SameLabel` labelling) are skipped, so the
/// result may be shorter than `count`.
pub fn analysis_batch(g: &GeneratedInstance, count: usize, seed: u64) -> Vec<AnalysisQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        match i % 4 {
            0 => {
                if let Some(p) = random_path_query(g, &mut rng, 1000) {
                    out.push(AnalysisQuery { path: p, target: None, satisfiable: true });
                }
            }
            1 => {
                if let Some(p) = random_path_query(g, &mut rng, 1000) {
                    let located = locate_weak(&g.instance, &p);
                    let target = located[rng.gen_range(0..located.len())];
                    out.push(AnalysisQuery {
                        path: p,
                        target: Some(target),
                        satisfiable: true,
                    });
                }
            }
            2 => {
                if let Some(p) = random_dead_path(g, &mut rng, 1000) {
                    out.push(AnalysisQuery { path: p, target: None, satisfiable: false });
                }
            }
            _ => {
                // The root is never located by a path of positive
                // length, so pointing at it is provably unsatisfiable.
                if let Some(p) = random_path_query(g, &mut rng, 1000) {
                    out.push(AnalysisQuery {
                        path: p,
                        target: Some(g.instance.root()),
                        satisfiable: false,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Labeling, WorkloadConfig};
    use crate::tree::generate;

    #[test]
    fn path_queries_have_length_equal_to_depth() {
        let g = generate(&WorkloadConfig::paper(4, 2, Labeling::FullyRandom, 21));
        let qs = query_batch(&g, 10, 1);
        assert!(!qs.is_empty());
        for q in &qs {
            assert_eq!(q.len(), 4);
            assert!(!locate_weak(&g.instance, q).is_empty());
        }
    }

    #[test]
    fn sl_queries_always_match_something() {
        // With SL labelling every parent uses one label per level, so a
        // random per-depth label choice still frequently matches; the
        // acceptance loop guarantees matches.
        let g = generate(&WorkloadConfig::paper(3, 4, Labeling::SameLabel, 33));
        let qs = query_batch(&g, 10, 2);
        assert_eq!(qs.len(), 10);
    }

    #[test]
    fn selection_queries_select_objects_on_path() {
        let g = generate(&WorkloadConfig::paper(3, 2, Labeling::SameLabel, 5));
        let sels = selection_batch(&g, 5, 3);
        assert!(!sels.is_empty());
        for (cond, o) in &sels {
            let SelectCond::ObjectAt(p, obj) = cond else { panic!("object condition") };
            assert_eq!(obj, o);
            assert!(locate_weak(&g.instance, p).contains(o));
        }
    }

    #[test]
    fn query_batches_are_deterministic() {
        let g = generate(&WorkloadConfig::paper(3, 2, Labeling::FullyRandom, 8));
        assert_eq!(query_batch(&g, 5, 7), query_batch(&g, 5, 7));
    }

    #[test]
    fn analysis_batches_tag_satisfiability_truthfully() {
        let g = generate(&WorkloadConfig::paper(4, 2, Labeling::FullyRandom, 21));
        let batch = analysis_batch(&g, 40, 9);
        assert!(!batch.is_empty());
        let mut unsat = 0;
        for q in &batch {
            let located = locate_weak(&g.instance, &q.path);
            let holds = match q.target {
                Some(t) => located.contains(&t),
                None => !located.is_empty(),
            };
            assert_eq!(holds, q.satisfiable, "{q:?}");
            if !q.satisfiable {
                unsat += 1;
            }
        }
        assert!(unsat > 0, "mixed batch must contain unsatisfiable entries");
        assert_eq!(batch, analysis_batch(&g, 40, 9));
    }
}
