//! # pxml-gen — the Section 7.1 workload generator
//!
//! Reproduces the paper's experimental setup exactly:
//!
//! * [`tree::generate`] — balanced trees (depth 3–9, branching 2–8) with
//!   no cardinality constraints, `2^b` random OPF entries per non-leaf,
//!   and SL (same-label) or FR (fully-random) edge labelling.
//! * [`queries`] — random path queries of length equal to the depth,
//!   accepted only when some object satisfies them, and random `p = o`
//!   selection queries drawn from `SelObj`.
//! * [`workload::Grid`] — the full depth × branching × labelling sweep.
//!
//! Everything is deterministic given the seeds.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod dag;
pub mod mutations;
pub mod queries;
pub mod requests;
pub mod tree;
pub mod workload;

pub use config::{Labeling, WorkloadConfig};
pub use dag::{random_dag, random_dag_with, DagConfig};
pub use mutations::random_mutations;
pub use requests::{serve_workload, ServeRequest};
pub use queries::{
    analysis_batch, query_batch, random_dead_path, random_path_query, random_selection_query,
    selection_batch, AnalysisQuery,
};
pub use tree::{generate, GeneratedInstance};
pub use workload::{Grid, GridCell};
