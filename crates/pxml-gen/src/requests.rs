//! Mixed request workloads for the `pxml serve` load harness.
//!
//! Where [`crate::queries`] produces resolved [`PathExpr`]s for the
//! in-process engine, a daemon client speaks *text*: QL lines and
//! mutation-op lines addressed by catalog names. [`serve_workload`]
//! renders a deterministic mixed stream of `POINT` / `EXISTS` / `CHAIN`
//! queries and always-applicable entry-level mutations (drawn from
//! [`crate::mutations::random_mutations`], so any interleaving of the
//! stream against the instance applies cleanly).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pxml_algebra::locate::locate_weak;
use pxml_algebra::path::PathExpr;
use pxml_core::ObjectId;

use crate::mutations::random_mutations;
use crate::queries::random_path_query;
use crate::tree::GeneratedInstance;

/// One serve-protocol request body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeRequest {
    /// A QL probability query — the body of a `QUERY` frame.
    Query(String),
    /// One mutation op line — the body of a `MUTATE` frame.
    Mutate(String),
}

/// Renders `root.l1.….ld` by catalog names.
fn path_text(g: &GeneratedInstance, p: &PathExpr) -> String {
    let catalog = g.instance.catalog();
    let mut out = catalog.object_name(p.root).to_string();
    for l in &p.labels {
        out.push('.');
        out.push_str(catalog.label_name(*l));
    }
    out
}

/// Renders a random object chain `root.c1.….ck` (k ≥ 1) following weak
/// edges, by catalog names.
fn chain_text(g: &GeneratedInstance, rng: &mut StdRng) -> Option<String> {
    let catalog = g.instance.catalog();
    let mut here = g.instance.root();
    let mut out = catalog.object_name(here).to_string();
    let hops = rng.gen_range(1..=g.config.depth);
    for _ in 0..hops {
        let children: Vec<ObjectId> =
            g.instance.weak().weak_edges(here).into_iter().map(|(_, c)| c).collect();
        if children.is_empty() {
            break;
        }
        here = children[rng.gen_range(0..children.len())];
        out.push('.');
        out.push_str(catalog.object_name(here));
    }
    if out.contains('.') {
        Some(out)
    } else {
        None
    }
}

/// A deterministic mixed request stream: `count` requests of which
/// roughly `mutate_per_mille`‰ are mutations, the rest cycling
/// exists / point / chain queries. Queries are accepted-by-construction
/// (they locate something), mutations always apply cleanly; the stream
/// may come up short only when the instance offers no mutable targets
/// or no accepted queries.
pub fn serve_workload(
    g: &GeneratedInstance,
    count: usize,
    mutate_per_mille: u32,
    seed: u64,
) -> Vec<ServeRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Entry-level ops are cheap to pre-generate; cycle through a pool.
    let pool = random_mutations(&g.instance, count.clamp(1, 256), seed ^ 0x6d75_7461_7465);
    let mut next_op = 0usize;
    let mut out = Vec::with_capacity(count);
    let mut kind = 0usize;
    for _ in 0..count {
        if !pool.is_empty() && rng.gen_range(0..1000u32) < mutate_per_mille {
            let op = &pool[next_op % pool.len()];
            next_op += 1;
            let line = pxml_core::render_ops(&g.instance, std::slice::from_ref(op));
            out.push(ServeRequest::Mutate(line.trim_end().to_string()));
            continue;
        }
        kind += 1;
        let req = match kind % 3 {
            0 => chain_text(g, &mut rng).map(|c| ServeRequest::Query(format!("CHAIN {c}"))),
            1 => random_path_query(g, &mut rng, 1000)
                .map(|p| ServeRequest::Query(format!("EXISTS {}", path_text(g, &p)))),
            _ => random_path_query(g, &mut rng, 1000).and_then(|p| {
                let located = locate_weak(&g.instance, &p);
                if located.is_empty() {
                    return None;
                }
                let target = located[rng.gen_range(0..located.len())];
                Some(ServeRequest::Query(format!(
                    "POINT {} IN {}",
                    g.instance.catalog().object_name(target),
                    path_text(g, &p)
                )))
            }),
        };
        if let Some(r) = req {
            out.push(r);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Labeling, WorkloadConfig};
    use crate::tree::generate;

    #[test]
    fn workload_is_deterministic_and_mixed() {
        let g = generate(&WorkloadConfig::paper(4, 2, Labeling::FullyRandom, 17));
        let w = serve_workload(&g, 200, 100, 5);
        assert_eq!(w, serve_workload(&g, 200, 100, 5));
        let mutates = w.iter().filter(|r| matches!(r, ServeRequest::Mutate(_))).count();
        let queries = w.len() - mutates;
        assert!(mutates > 0, "10% mutate share must appear in 200 draws");
        assert!(queries > 0);
        let text_of = |r: &ServeRequest| match r {
            ServeRequest::Query(t) | ServeRequest::Mutate(t) => t.clone(),
        };
        assert!(w.iter().any(|r| text_of(r).starts_with("POINT ")));
        assert!(w.iter().any(|r| text_of(r).starts_with("EXISTS ")));
        assert!(w.iter().any(|r| text_of(r).starts_with("CHAIN ")));
    }

    #[test]
    fn query_lines_parse_and_mutations_apply() {
        let g = generate(&WorkloadConfig::paper(3, 2, Labeling::SameLabel, 3));
        let mut pi = g.instance.clone();
        for r in serve_workload(&g, 100, 200, 9) {
            match r {
                ServeRequest::Query(line) => {
                    pxml_ql::parse(&line).expect("generated QL parses");
                }
                ServeRequest::Mutate(line) => {
                    for op in pxml_core::parse_ops(&pi, &line).expect("generated op parses") {
                        pi.apply(&op).expect("generated op applies");
                    }
                }
            }
        }
        pi.validate().expect("instance stays coherent");
    }
}
