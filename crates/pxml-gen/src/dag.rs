//! Random DAG-shaped instance generation.
//!
//! The paper's experiments use trees, but the PXML model allows any
//! acyclic weak instance (shared children, multiple parents). This
//! generator produces small random DAGs — forward edges between
//! topologically ordered objects, occasional cardinality constraints,
//! occasional typed leaves — used by the cross-crate property tests to
//! exercise exactly the structure the tree-only algorithms must refuse.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pxml_core::ids::{IdMap, ObjectKind};
use pxml_core::potential::pc_sets;
use pxml_core::{
    Card, Catalog, ChildUniverse, LeafInfo, LeafType, ObjectId, Opf, OpfTable, ProbInstance,
    Value, Vpf, WeakInstance, WeakNode,
};

/// Configuration for [`random_dag`].
#[derive(Clone, Debug)]
pub struct DagConfig {
    /// Minimum number of objects (inclusive).
    pub min_objects: usize,
    /// Maximum number of objects (inclusive).
    pub max_objects: usize,
    /// Probability of adding each candidate forward edge.
    pub edge_prob: f64,
    /// Maximum children per object.
    pub max_children: usize,
    /// Probability that a childless object is a typed leaf.
    pub leaf_prob: f64,
    /// Probability that an object gets a cardinality constraint.
    pub card_prob: f64,
}

impl Default for DagConfig {
    fn default() -> Self {
        DagConfig {
            min_objects: 3,
            max_objects: 7,
            edge_prob: 0.35,
            max_children: 4,
            leaf_prob: 0.6,
            card_prob: 0.3,
        }
    }
}

/// Generates a random acyclic probabilistic instance; deterministic in
/// the seed. Objects are named `g0..gN`, labels are `x` and `y`, leaves
/// use the type `vt` with domain `{1, 2}`.
pub fn random_dag(seed: u64) -> ProbInstance {
    random_dag_with(seed, &DagConfig::default())
}

/// [`random_dag`] with an explicit configuration.
pub fn random_dag_with(seed: u64, cfg: &DagConfig) -> ProbInstance {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let n = rng.gen_range(cfg.min_objects..=cfg.max_objects);
    let mut catalog = Catalog::new();
    let ty = catalog.define_type(LeafType::new("vt", [Value::Int(1), Value::Int(2)]));
    let labels = [catalog.label("x"), catalog.label("y")];
    let ids: Vec<ObjectId> = (0..n).map(|i| catalog.object(&format!("g{i}"))).collect();

    // Forward edges; every non-root gets at least one parent.
    let mut children: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for j in 1..n {
        let mut got_parent = false;
        for child_list in children.iter_mut().take(j) {
            if child_list.len() < cfg.max_children && rng.gen_bool(cfg.edge_prob) {
                child_list.push((j, rng.gen_range(0..labels.len())));
                got_parent = true;
            }
        }
        if !got_parent {
            let i = rng.gen_range(0..j);
            children[i].push((j, rng.gen_range(0..labels.len())));
        }
    }

    let mut nodes: IdMap<ObjectKind, WeakNode> = IdMap::new();
    for i in 0..n {
        let mut universe = ChildUniverse::new();
        for &(c, l) in &children[i] {
            universe.push(ids[c], labels[l]);
        }
        let mut cards = Vec::new();
        if !children[i].is_empty() && rng.gen_bool(cfg.card_prob) {
            let l = labels[children[i][0].1];
            let avail = children[i].iter().filter(|&&(_, li)| labels[li] == l).count() as u32;
            let min = rng.gen_range(0..=avail);
            let max = rng.gen_range(min.max(1)..=avail.max(min.max(1)));
            cards.push((l, Card::new(min, max.min(avail).max(min))));
        }
        let leaf = if children[i].is_empty() && rng.gen_bool(cfg.leaf_prob) {
            Some(LeafInfo { ty, val: None })
        } else {
            None
        };
        nodes.insert(ids[i], WeakNode::from_parts(universe, cards, leaf));
    }
    let weak = WeakInstance::from_parts(Arc::new(catalog), ids[0], nodes)
        .expect("forward edges with full parent coverage are valid");

    let mut opfs: IdMap<ObjectKind, Opf> = IdMap::new();
    let mut vpfs: IdMap<ObjectKind, Vpf> = IdMap::new();
    for &o in &ids {
        let node = weak.node(o).expect("member");
        if node.leaf().is_some() {
            let a = rng.gen_range(0.05..0.95);
            vpfs.insert(
                o,
                Vpf::from_entries([(Value::Int(1), a), (Value::Int(2), 1.0 - a)]),
            );
        } else if !node.is_childless() {
            let sets = pc_sets(&weak, o);
            let mut weights: Vec<f64> =
                (0..sets.len()).map(|_| rng.gen::<f64>() + 1e-6).collect();
            let total: f64 = weights.iter().sum();
            for w in &mut weights {
                *w /= total;
            }
            opfs.insert(
                o,
                Opf::Table(OpfTable::from_entries(sets.into_iter().zip(weights))),
            );
        }
    }
    ProbInstance::from_parts(weak, opfs, vpfs).expect("constructed instance is coherent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_core::enumerate_worlds;

    #[test]
    fn random_dags_are_valid_and_coherent() {
        for seed in 0..50 {
            let pi = random_dag(seed);
            pi.validate().unwrap();
            let worlds = enumerate_worlds(&pi).unwrap();
            assert!((worlds.total() - 1.0).abs() < 1e-7, "seed {seed}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_dag(17);
        let b = random_dag(17);
        assert_eq!(a.object_count(), b.object_count());
        let wa = enumerate_worlds(&a).unwrap();
        let wb = enumerate_worlds(&b).unwrap();
        assert!(wa.approx_eq(&wb, 1e-12));
    }

    #[test]
    fn some_seeds_produce_shared_children() {
        let shared = (0..80).any(|seed| {
            let pi = random_dag(seed);
            !pi.weak().is_tree_shaped()
        });
        assert!(shared, "DAG generator must sometimes produce multi-parent objects");
    }

    #[test]
    fn config_bounds_are_respected() {
        let cfg = DagConfig { min_objects: 4, max_objects: 4, ..DagConfig::default() };
        for seed in 0..20 {
            assert_eq!(random_dag_with(seed, &cfg).object_count(), 4);
        }
    }
}
