//! Workload configuration mirroring Section 7.1.

/// Edge-labelling scheme of Section 7.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Labeling {
    /// "Same label" (SL): all children of the same parent share one label.
    SameLabel,
    /// "Fully random" (FR): every child gets an independently random label.
    FullyRandom,
}

impl Labeling {
    /// The short name used in the paper's figures.
    pub fn short(&self) -> &'static str {
        match self {
            Labeling::SameLabel => "SL",
            Labeling::FullyRandom => "FR",
        }
    }
}

/// Configuration of one generated probabilistic instance.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Tree depth (number of edge levels below the root); 3–9 in §7.1.
    pub depth: usize,
    /// Branching factor (children per non-leaf); 2–8 in §7.1.
    pub branching: usize,
    /// Labelling scheme.
    pub labeling: Labeling,
    /// Size of the per-depth label alphabet (the paper's example uses 2).
    pub labels_per_depth: usize,
    /// Domain size of leaf values (0 disables typed leaves, as in the
    /// paper's structural experiments).
    pub leaf_domain: usize,
    /// RNG seed — all generation is deterministic given the seed.
    pub seed: u64,
}

impl WorkloadConfig {
    /// A §7.1-style configuration with the paper's defaults.
    pub fn paper(depth: usize, branching: usize, labeling: Labeling, seed: u64) -> Self {
        WorkloadConfig {
            depth,
            branching,
            labeling,
            labels_per_depth: 2,
            leaf_domain: 0,
            seed,
        }
    }

    /// Total number of objects of the balanced tree:
    /// `(b^(d+1) - 1) / (b - 1)`.
    pub fn object_count(&self) -> u64 {
        let b = self.branching as u64;
        if b == 1 {
            return self.depth as u64 + 1;
        }
        (b.pow(self.depth as u32 + 1) - 1) / (b - 1)
    }

    /// Number of non-leaf objects: `(b^d - 1) / (b - 1)`.
    pub fn non_leaf_count(&self) -> u64 {
        let b = self.branching as u64;
        if b == 1 {
            return self.depth as u64;
        }
        (b.pow(self.depth as u32) - 1) / (b - 1)
    }

    /// Number of OPF entries per non-leaf object (`2^b`, §7.1: "the total
    /// number of entries in a local interpretation for each non-leaf
    /// object is 2^b").
    pub fn entries_per_opf(&self) -> u64 {
        1u64 << self.branching
    }

    /// Total `℘` entries across the instance.
    pub fn interpretation_entries(&self) -> u64 {
        self.non_leaf_count() * self.entries_per_opf()
            + if self.leaf_domain > 0 {
                (self.object_count() - self.non_leaf_count()) * self.leaf_domain as u64
            } else {
                0
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_counts_match_closed_form() {
        let c = WorkloadConfig::paper(2, 2, Labeling::SameLabel, 0);
        assert_eq!(c.object_count(), 7); // 1 + 2 + 4
        assert_eq!(c.non_leaf_count(), 3); // 1 + 2
        assert_eq!(c.entries_per_opf(), 4);
        assert_eq!(c.interpretation_entries(), 12);
    }

    #[test]
    fn paper_extreme_cell_is_299593_objects() {
        // §7.2: "the updating time for 299593 objects and branch factor 8".
        let c = WorkloadConfig::paper(6, 8, Labeling::SameLabel, 0);
        assert_eq!(c.object_count(), 299_593);
    }

    #[test]
    fn labeling_short_names() {
        assert_eq!(Labeling::SameLabel.short(), "SL");
        assert_eq!(Labeling::FullyRandom.short(), "FR");
    }
}
