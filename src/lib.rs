//! # PXML — a probabilistic semistructured data model and algebra
//!
//! A from-scratch Rust implementation of
//!
//! > Edward Hung, Lise Getoor, V. S. Subrahmanian.
//! > *PXML: A Probabilistic Semistructured Data Model and Algebra.*
//! > ICDE 2003.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | contents | paper sections |
//! |---|---|---|
//! | [`core`] | semistructured / weak / probabilistic instances, possible-worlds semantics, Theorems 1–2 | 3, 4 |
//! | [`algebra`] | path expressions, ancestor/descendant/single projection, selection, Cartesian product, join, union/intersection, the naive oracle | 5, 6.1 |
//! | [`query`] | chain, point and existential probability queries | 6.2 |
//! | [`bayes`] | the Bayesian-network substrate (bucket elimination) | 6 |
//! | [`gen`] | the Section 7.1 workload generator | 7.1 |
//! | [`storage`] | `.pxml` text format and `.pxmlb` binary codec | 7.1 |
//! | [`protdb`] | ProTDB and SPO baselines with subsumption mappings | 8 |
//! | [`interval`] | interval probabilities (the PIXML companion track) | 1, 9 |
//! | [`ql`] | a textual query language compiling onto all engines | — |
//!
//! ## Quickstart
//!
//! ```
//! use pxml::core::fixtures::{fig2_instance, fig3_s1};
//! use pxml::core::worlds::world_probability;
//! use pxml::algebra::{PathExpr, select, SelectCond};
//! use pxml::query::point_query;
//!
//! // The paper's running example (Figure 2).
//! let pi = fig2_instance();
//!
//! // Example 4.1: the probability of one compatible world.
//! let p = world_probability(&pi, &fig3_s1()).unwrap();
//! assert!((p - 0.00448).abs() < 1e-12);
//!
//! // Situation 2 of Section 2: "now we know book B1 surely exists".
//! let b1 = pi.oid("B1").unwrap();
//! let path = PathExpr::parse(pi.catalog(), "R.book").unwrap();
//! let updated = select(&pi, &SelectCond::ObjectAt(path, b1)).unwrap();
//! assert!((updated.selectivity - 0.8).abs() < 1e-9);
//!
//! // Situation 4: "the probability that a particular title exists".
//! let t2 = pi.oid("T2").unwrap();
//! let path = PathExpr::parse(pi.catalog(), "R.book.title").unwrap();
//! assert!((point_query(&pi, &path, t2).unwrap() - 0.8).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

/// The data model and possible-worlds semantics (`pxml-core`).
pub use pxml_core as core;

/// The algebra: projection, selection, product, join, set operations
/// (`pxml-algebra`).
pub use pxml_algebra as algebra;

/// Probabilistic point queries (`pxml-query`).
pub use pxml_query as query;

/// Bayesian-network inference substrate (`pxml-bayes`).
pub use pxml_bayes as bayes;

/// The Section 7.1 workload generator (`pxml-gen`).
pub use pxml_gen as gen;

/// Text and binary persistence (`pxml-storage`).
pub use pxml_storage as storage;

/// ProTDB / SPO baselines (`pxml-protdb`).
pub use pxml_protdb as protdb;

/// Interval probabilities (`pxml-interval`).
pub use pxml_interval as interval;

/// The textual query language (`pxml-ql`).
pub use pxml_ql as ql;

/// The batch query engine and its instrumentation, re-exported at the
/// top level: answer `Vec<BatchQuery>` batches through one shared
/// marginalisation cache, optionally fanned out over worker threads.
/// Results are exactly (`==`) those of the sequential functions in
/// [`query`].
pub use pxml_query::{
    EngineStats, MarginalCache, Query as BatchQuery, QueryEngine, StatsSnapshot,
};

/// The observability layer, re-exported at the top level: per-query
/// trace records (phase spans, cache provenance, budget spend) and the
/// Prometheus text-exposition metrics registry.
pub use pxml_query::{MetricsRegistry, QueryTrace, TraceMode, TraceOutcome};
